//! `chaos` — kill/restart drill against the resident job server.
//!
//! ```sh
//! cargo run --release -p nemscmos-bench --bin chaos -- [--smoke]
//! ```
//!
//! Spawns the real `nemscmos-server` binary (built alongside this one)
//! and drills the robustness contract end to end over the Unix socket:
//!
//! 1. **Reference** — a clean run of a mixed batch (verify transients,
//!    domino periods, Monte-Carlo sweeps, fault-injected solves)
//!    records every terminal outcome.
//! 2. **Crash/restart** — the same batch against a fresh run directory,
//!    `SIGKILL`ed mid-batch after roughly half the acks, then restarted
//!    on the same run id. Every acknowledged job must still reach a
//!    terminal outcome (journal-before-ack means an ack is a durability
//!    promise), unacknowledged decks are resubmitted, and the merged
//!    outcomes must be **bitwise identical** to the reference.
//! 3. **Overload** — a one-worker server with a tiny queue: typed
//!    `queue-full` / `bad-request` / `deck-too-large` rejections,
//!    watermark degradation of Monte-Carlo decks, and priority shedding
//!    must all show up both in-band and in the health counters.
//! 4. **Quota** — a starvation-grant server: a greedy client is killed
//!    in-band with a typed `deadline` failure, its next submission is
//!    refused `quota-exhausted`, and an unrelated frugal client still
//!    gets service.
//!
//! Zero panics are tolerated in any server log, including the one cut
//! short by `SIGKILL`. Prints `chaos OK` on success; prints every
//! violation and exits non-zero otherwise. `ci.sh` runs `--smoke`
//! (a reduced batch, same assertions).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use nemscmos_bench::cli::Cli;
use nemscmos_harness::Json;
use nemscmos_server::{RejectReason, Response, ServerClient};
use nemscmos_verify::diff;

/// Longest we wait for any single job / drain / probe loop.
const PATIENCE: Duration = Duration::from_secs(300);

/// Environment knobs scrubbed from the child so ambient harness
/// configuration can never skew the drill.
const SCRUBBED_ENV: [&str; 5] = [
    "NEMSCMOS_HARNESS_DEADLINE_MS",
    "NEMSCMOS_HARNESS_STALL_MS",
    "NEMSCMOS_HARNESS_THREADS",
    "NEMSCMOS_HARNESS_CACHE",
    "NEMSCMOS_HARNESS_CACHE_DIR",
];

/// One spawned server: the child process plus where its log went.
struct ServerProc {
    child: Child,
    socket: PathBuf,
    log: PathBuf,
}

fn server_bin() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| format!("{exe:?} has no parent directory"))?;
    let mut candidates = vec![dir.join("nemscmos-server")];
    if let Some(up) = dir.parent() {
        // `cargo test` runs binaries out of `deps/`.
        candidates.push(up.join("nemscmos-server"));
    }
    candidates.into_iter().find(|c| c.is_file()).ok_or_else(|| {
        format!(
            "nemscmos-server binary not found next to {exe:?}; \
                 run `cargo build -p nemscmos-server` first"
        )
    })
}

fn spawn_server(
    bin: &Path,
    dir: &Path,
    run_id: &str,
    extra: &[&str],
    log: &Path,
) -> Result<ServerProc, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
    let out = std::fs::File::create(log).map_err(|e| format!("create {log:?}: {e}"))?;
    let err = out
        .try_clone()
        .map_err(|e| format!("clone log handle: {e}"))?;
    let mut cmd = Command::new(bin);
    cmd.arg("--dir")
        .arg(dir)
        .args(["--run-id", run_id])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::from(out))
        .stderr(Stdio::from(err));
    for key in SCRUBBED_ENV {
        cmd.env_remove(key);
    }
    let child = cmd.spawn().map_err(|e| format!("spawn {bin:?}: {e}"))?;
    Ok(ServerProc {
        child,
        socket: dir.join("server.sock"),
        log: log.to_path_buf(),
    })
}

impl ServerProc {
    fn client(&self) -> Result<ServerClient, String> {
        ServerClient::connect_with_retry(&self.socket, 150, Duration::from_millis(20))
    }

    /// Blocks until the child exits, up to [`PATIENCE`].
    fn wait_exit(&mut self) -> Option<std::process::ExitStatus> {
        let deadline = Instant::now() + PATIENCE;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return Some(status),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                _ => return None,
            }
        }
    }

    /// `SIGKILL` — the crash half of the drill.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful drain: request shutdown, then insist the process exits
    /// cleanly. Falls back to `SIGKILL` so a wedged server can never
    /// leak past the drill.
    fn stop(mut self, violations: &mut Vec<String>, label: &str) {
        match self.client().and_then(|mut c| c.shutdown()) {
            Ok(_) => {
                if self.wait_exit().is_none_or(|s| !s.success()) {
                    violations.push(format!("{label}: server did not drain cleanly"));
                    self.kill9();
                }
            }
            Err(e) => {
                violations.push(format!("{label}: shutdown request failed: {e}"));
                self.kill9();
            }
        }
        scan_log(&self.log, violations, label);
    }
}

/// A panic anywhere in a server log — even one truncated by `SIGKILL`
/// — is an automatic violation.
fn scan_log(log: &Path, violations: &mut Vec<String>, label: &str) {
    match std::fs::read_to_string(log) {
        Ok(text) if text.contains("panicked") => {
            violations.push(format!("{label}: server log {log:?} contains a panic"));
        }
        Ok(_) => {}
        Err(e) => violations.push(format!("{label}: cannot read server log {log:?}: {e}")),
    }
}

/// The mixed batch: every deck family, all seeds spec-owned.
fn batch(smoke: bool) -> Vec<String> {
    let mut specs = Vec::new();
    let verify = if smoke { 2 } else { 4 };
    for deck in diff::decks().into_iter().take(verify) {
        specs.push(format!("deck v1 verify name={}", deck.name));
    }
    specs.push("deck v1 domino fan_in=4 fan_out=2".to_string());
    if !smoke {
        specs.push("deck v1 domino fan_in=8 fan_out=4".to_string());
    }
    for k in 0..if smoke { 2 } else { 4 } {
        specs.push(format!("deck v1 mc trials=48 seed={} sigma=0.05", 100 + k));
    }
    specs.push("deck v1 fault kind=nan disarm=gmin seed=11".to_string());
    if !smoke {
        specs.push("deck v1 fault kind=singular disarm=src-step seed=7".to_string());
    }
    specs
}

/// The comparable signature of a terminal outcome: what the answer
/// *is*, independent of which path (`run`/`cache`/`journal`) served it.
fn signature(resp: &Response) -> String {
    match resp {
        Response::Done {
            degraded, result, ..
        } => format!("done degraded={degraded} result={}", result.render()),
        Response::Failed { kind, .. } => format!("failed kind={kind}"),
        Response::Shed { .. } => "shed".to_string(),
        other => format!("non-terminal {other:?}"),
    }
}

fn health_num(stats: &Json, key: &str) -> f64 {
    stats.get(key).and_then(Json::as_f64).unwrap_or(-1.0)
}

fn rejected_num(stats: &Json, key: &str) -> f64 {
    stats
        .get("rejected")
        .and_then(|r| r.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(-1.0)
}

/// Polls the durable `result` op until the spec reaches a terminal
/// outcome. `Running` means "not yet"; `not-found` is the caller's
/// problem to interpret (a lost ack or simply never submitted).
fn poll_result(client: &mut ServerClient, spec: &str) -> Result<Response, String> {
    let deadline = Instant::now() + PATIENCE;
    loop {
        let resp = client.result(spec)?;
        match resp {
            Response::Running { .. } => {
                if Instant::now() >= deadline {
                    return Err(format!("timed out polling result of {spec:?}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            other => return Ok(other),
        }
    }
}

/// Phase 1: the uninterrupted reference outcomes, spec → signature.
fn phase_reference(
    bin: &Path,
    root: &Path,
    specs: &[String],
    violations: &mut Vec<String>,
) -> BTreeMap<String, String> {
    println!("chaos: phase 1 — reference run ({} decks)", specs.len());
    let mut reference = BTreeMap::new();
    let server = match spawn_server(
        bin,
        &root.join("reference"),
        "chaos",
        &["--workers", "2"],
        &root.join("reference.log"),
    ) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("reference: {e}"));
            return reference;
        }
    };
    let mut run = || -> Result<(), String> {
        let mut client = server.client()?;
        let mut digests = Vec::new();
        for spec in specs {
            match client.submit("reference", spec, 5)? {
                Response::Accepted {
                    digest, degraded, ..
                } => {
                    if degraded {
                        return Err(format!("{spec:?} degraded on an idle server"));
                    }
                    digests.push(digest);
                }
                other => return Err(format!("{spec:?} not accepted: {other:?}")),
            }
        }
        for (spec, digest) in specs.iter().zip(&digests) {
            let (terminal, _) = client.wait(digest)?;
            reference.insert(spec.clone(), signature(&terminal));
        }
        let stats = client.health()?;
        if health_num(&stats, "accepted") != specs.len() as f64 {
            return Err(format!(
                "health accepted={} after {} submissions",
                health_num(&stats, "accepted"),
                specs.len()
            ));
        }
        Ok(())
    };
    if let Err(e) = run() {
        violations.push(format!("reference: {e}"));
    }
    server.stop(violations, "reference");
    reference
}

/// Phase 2: `SIGKILL` mid-batch, restart on the same run id, and the
/// merged outcomes must match the reference bitwise with zero lost
/// acks.
fn phase_crash_restart(
    bin: &Path,
    root: &Path,
    specs: &[String],
    reference: &BTreeMap<String, String>,
    violations: &mut Vec<String>,
) {
    println!("chaos: phase 2 — kill -9 mid-batch, restart, merge");
    let dir = root.join("crash");
    let mut first = match spawn_server(
        bin,
        &dir,
        "chaos",
        &["--workers", "2"],
        &root.join("crash-1.log"),
    ) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("crash: {e}"));
            return;
        }
    };

    // Submit until roughly half the batch is acknowledged, then pull
    // the plug while workers are mid-execution.
    let mut acked: Vec<String> = Vec::new();
    let target = specs.len().div_ceil(2);
    match first.client() {
        Ok(mut client) => {
            for spec in specs.iter().take(target) {
                match client.submit("crash", spec, 5) {
                    Ok(Response::Accepted { .. }) => acked.push(spec.clone()),
                    Ok(other) => {
                        violations.push(format!("crash: {spec:?} not accepted: {other:?}"))
                    }
                    Err(e) => violations.push(format!("crash: submit {spec:?}: {e}")),
                }
            }
        }
        Err(e) => violations.push(format!("crash: connect: {e}")),
    }
    // Let a couple of the quick decks finish so the restart replays a
    // mix of completed results and unfinished orphans.
    std::thread::sleep(Duration::from_millis(300));
    first.kill9();
    scan_log(&first.log, violations, "crash (killed server)");
    println!(
        "chaos:   killed server after {} of {} acks",
        acked.len(),
        specs.len()
    );

    let second = match spawn_server(
        bin,
        &dir,
        "chaos",
        &["--workers", "2"],
        &root.join("crash-2.log"),
    ) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("crash: restart: {e}"));
            return;
        }
    };
    let mut merged: BTreeMap<String, String> = BTreeMap::new();
    let mut run = || -> Result<(), String> {
        let mut client = second.client()?;
        for spec in specs {
            let durable = poll_result(&mut client, spec)?;
            let outcome = match durable {
                Response::Rejected {
                    reason: RejectReason::NotFound,
                    ..
                } => {
                    if acked.contains(spec) {
                        return Err(format!(
                            "LOST ACK: {spec:?} was acknowledged before the kill \
                             but the restarted server does not know it"
                        ));
                    }
                    // Never acknowledged: the client's retry path.
                    match client.submit("crash", spec, 5)? {
                        Response::Accepted { digest, .. } => client.wait(&digest)?.0,
                        other => return Err(format!("resubmit {spec:?}: {other:?}")),
                    }
                }
                terminal => terminal,
            };
            merged.insert(spec.clone(), signature(&outcome));
        }
        let stats = client.health()?;
        let pending = stats
            .get("journal")
            .and_then(|j| j.get("pending"))
            .and_then(Json::as_f64)
            .unwrap_or(-1.0);
        if pending != 0.0 {
            return Err(format!(
                "{pending} journal entries still pending after merge"
            ));
        }
        Ok(())
    };
    if let Err(e) = run() {
        violations.push(format!("crash: {e}"));
    }
    for (spec, want) in reference {
        match merged.get(spec) {
            Some(got) if got == want => {}
            Some(got) => violations.push(format!(
                "crash: {spec:?} diverged after restart\n  reference: {want}\n  merged:    {got}"
            )),
            None => violations.push(format!("crash: {spec:?} has no merged outcome")),
        }
    }
    second.stop(violations, "crash (restarted server)");
}

/// Phase 3: overload a one-worker, three-slot server and demand every
/// backpressure mechanism shows up typed.
fn phase_overload(bin: &Path, root: &Path, violations: &mut Vec<String>) {
    println!("chaos: phase 3 — overload: rejections, degradation, shedding");
    let server = match spawn_server(
        bin,
        &root.join("overload"),
        "chaos",
        &[
            "--workers",
            "1",
            "--queue",
            "3",
            "--watermark",
            "2",
            "--min-trials",
            "8",
        ],
        &root.join("overload.log"),
    ) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("overload: {e}"));
            return;
        }
    };
    let run = || -> Result<(), String> {
        let mut client = server.client()?;
        let malformed = client.submit("overload", "deck v1 warp factor=9", 5)?;
        if !ServerClient::rejected_with(&malformed, RejectReason::BadRequest) {
            return Err(format!(
                "malformed spec not rejected bad-request: {malformed:?}"
            ));
        }
        let huge = client.submit("overload", "deck v1 domino fan_in=128 fan_out=2", 5)?;
        if !ServerClient::rejected_with(&huge, RejectReason::DeckTooLarge) {
            return Err(format!(
                "oversized deck not rejected deck-too-large: {huge:?}"
            ));
        }

        // A big Monte-Carlo deck pins the single worker while the queue
        // fills. Its duration is iteration-bound (~270k Newton solves),
        // not build-profile-bound: a release build churns a small
        // domino transient in milliseconds, which let the worker drain
        // the flood before the watermark could trip. Submitted to an
        // empty queue, so it is accepted undegraded despite being mc.
        let blocker =
            match client.submit("overload", "deck v1 mc trials=90000 seed=999 sigma=0.05", 9)? {
                Response::Accepted {
                    digest, degraded, ..
                } => {
                    if degraded {
                        return Err("blocker degraded on an empty queue".to_string());
                    }
                    digest
                }
                other => return Err(format!("blocker not accepted: {other:?}")),
            };
        // Flood only once the worker has demonstrably picked the blocker
        // up — a fixed sleep would either waste the blocker's runtime
        // (release) or fire too early (debug under load).
        let pickup = Instant::now() + PATIENCE;
        loop {
            let stats = client.health()?;
            if health_num(&stats, "running") >= 1.0 {
                break;
            }
            if health_num(&stats, "completed") >= 1.0 {
                return Err("blocker finished before the flood could be submitted".to_string());
            }
            if Instant::now() >= pickup {
                return Err("worker never picked up the blocker".to_string());
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        let mut flood = Vec::new();
        let mut saw_degraded = false;
        for (k, priority) in [(0u64, 2u8), (1, 5), (2, 5)] {
            let spec = format!("deck v1 mc trials=64 seed={} sigma=0.05", 200 + k);
            match client.submit("flood", &spec, priority)? {
                Response::Accepted {
                    digest, degraded, ..
                } => {
                    saw_degraded |= degraded;
                    flood.push(digest);
                }
                other => return Err(format!("flood {k} not accepted: {other:?}")),
            }
        }
        if !saw_degraded {
            return Err("no flood deck was degraded at the watermark".to_string());
        }
        // Equal-lowest priority cannot evict anyone: typed queue-full.
        let full = client.submit("flood", "deck v1 mc trials=64 seed=210 sigma=0.05", 2)?;
        if !ServerClient::rejected_with(&full, RejectReason::QueueFull) {
            return Err(format!("full queue did not reject queue-full: {full:?}"));
        }
        // A higher-priority arrival sheds the priority-2 victim.
        let vip = match client.submit("flood", "deck v1 mc trials=64 seed=211 sigma=0.05", 8)? {
            Response::Accepted { digest, .. } => digest,
            other => return Err(format!("vip submission not accepted: {other:?}")),
        };
        flood.push(vip);

        let mut sheds = 0;
        for digest in flood.iter().chain([&blocker]) {
            let (terminal, _) = client.wait(digest)?;
            match terminal {
                Response::Done { .. } => {}
                Response::Shed { .. } => sheds += 1,
                other => return Err(format!("overload job ended {other:?}")),
            }
        }
        if sheds != 1 {
            return Err(format!("expected exactly one shed victim, saw {sheds}"));
        }

        let stats = client.health()?;
        for (key, want) in [
            ("bad-request", 1.0),
            ("deck-too-large", 1.0),
            ("queue-full", 1.0),
        ] {
            if rejected_num(&stats, key) < want {
                return Err(format!(
                    "health rejected.{key}={} (want >= {want})",
                    rejected_num(&stats, key)
                ));
            }
        }
        if health_num(&stats, "shed") != 1.0 {
            return Err(format!("health shed={}", health_num(&stats, "shed")));
        }
        if health_num(&stats, "degraded") < 1.0 {
            return Err(format!(
                "health degraded={}",
                health_num(&stats, "degraded")
            ));
        }
        Ok(())
    };
    if let Err(e) = run() {
        violations.push(format!("overload: {e}"));
    }
    server.stop(violations, "overload");
}

/// Phase 4: a starvation quota kills the greedy client in-band with a
/// typed failure and refuses its next job, while a frugal client is
/// untouched.
fn phase_quota(bin: &Path, root: &Path, violations: &mut Vec<String>) {
    println!("chaos: phase 4 — per-client quota exhaustion");
    let server = match spawn_server(
        bin,
        &root.join("quota"),
        "chaos",
        &["--workers", "1", "--quota", "10"],
        &root.join("quota.log"),
    ) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("quota: {e}"));
            return;
        }
    };
    let run = || -> Result<(), String> {
        let mut client = server.client()?;
        // ~2-3 Newton iterations per trial: 60 trials blows a grant of
        // 10 in-band, mid-job.
        let greedy = match client.submit("greedy", "deck v1 mc trials=60 seed=9 sigma=0.05", 5)? {
            Response::Accepted { digest, .. } => digest,
            other => return Err(format!("greedy job not accepted: {other:?}")),
        };
        match client.wait(&greedy)?.0 {
            Response::Failed { kind, .. } if kind == "deadline" => {}
            other => return Err(format!("greedy job should die in-band typed: {other:?}")),
        }
        let refused = client.submit("greedy", "deck v1 mc trials=60 seed=10 sigma=0.05", 5)?;
        if !ServerClient::rejected_with(&refused, RejectReason::QuotaExhausted) {
            return Err(format!(
                "spent client not rejected quota-exhausted: {refused:?}"
            ));
        }
        // Two trials fit inside a fresh grant of 10.
        let frugal = match client.submit("frugal", "deck v1 mc trials=2 seed=11 sigma=0.05", 5)? {
            Response::Accepted { digest, .. } => digest,
            other => return Err(format!("frugal job not accepted: {other:?}")),
        };
        match client.wait(&frugal)?.0 {
            Response::Done { .. } => {}
            other => return Err(format!("frugal client was starved: {other:?}")),
        }
        let stats = client.health()?;
        if rejected_num(&stats, "quota-exhausted") != 1.0 {
            return Err(format!(
                "health rejected.quota-exhausted={}",
                rejected_num(&stats, "quota-exhausted")
            ));
        }
        if health_num(&stats, "deadline_exceeded") != 1.0 {
            return Err(format!(
                "health deadline_exceeded={}",
                health_num(&stats, "deadline_exceeded")
            ));
        }
        Ok(())
    };
    if let Err(e) = run() {
        violations.push(format!("quota: {e}"));
    }
    server.stop(violations, "quota");
}

fn main() -> ExitCode {
    let args = Cli::new(
        "chaos",
        "kill/restart chaos drill against the resident job server",
    )
    .switch(
        "--smoke",
        "reduced CI variant (smaller batch, same assertions)",
    )
    .value("--dir", "scratch directory [default: target/chaos]")
    .parse_or_exit();
    let smoke = args.has("--smoke");
    let root = PathBuf::from(args.get("--dir").unwrap_or("target/chaos"));

    let bin = match server_bin() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::from(2);
        }
    };
    let _ = std::fs::remove_dir_all(&root);
    if let Err(e) = std::fs::create_dir_all(&root) {
        eprintln!("chaos: create {root:?}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "chaos: drilling {bin:?} in {root:?}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let specs = batch(smoke);
    let mut violations = Vec::new();
    let reference = phase_reference(&bin, &root, &specs, &mut violations);
    if violations.is_empty() {
        phase_crash_restart(&bin, &root, &specs, &reference, &mut violations);
    } else {
        println!("chaos: skipping crash phase — the reference run already failed");
    }
    phase_overload(&bin, &root, &mut violations);
    phase_quota(&bin, &root, &mut violations);

    if violations.is_empty() {
        println!("chaos OK ({} decks, 4 phases)", specs.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("chaos violation: {v}");
        }
        eprintln!("chaos: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
