//! Regenerates every table and figure of the paper in one run
//! (`cargo run --release -p nemscmos-bench --bin all`).

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::{device_tables, dynamic_or, sleep, sram};
use nemscmos_harness::drain_reports;

fn main() {
    Cli::new(
        "all",
        "regenerates every table and figure of the paper in one run",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    let mut failures = 0;

    println!(
        "=== Table 1 — device currents ===\n{}",
        device_tables::render_table1()
    );
    println!(
        "=== Figure 1 — scaling trend ===\n{}",
        device_tables::render_fig01()
    );
    println!(
        "=== Figure 2 — swing survey ===\n{}",
        device_tables::render_fig02()
    );

    match dynamic_or::fig09(&tech) {
        Ok(c) => println!(
            "=== Figure 9 — keeper trade-off ===\n{}",
            dynamic_or::render_fig09(&c)
        ),
        Err(e) => {
            eprintln!("fig09 failed: {e}");
            failures += 1;
        }
    }
    match dynamic_or::fig10(&tech) {
        Ok(p) => println!(
            "=== Figure 10 — OR vs fan-out ===\n{}",
            dynamic_or::render_fig10(&p)
        ),
        Err(e) => {
            eprintln!("fig10 failed: {e}");
            failures += 1;
        }
    }
    match dynamic_or::fig11(&tech) {
        Ok(p) => println!(
            "=== Figure 11 — OR vs fan-in ===\n{}",
            dynamic_or::render_fig11(&p)
        ),
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            failures += 1;
        }
    }
    match dynamic_or::fig12(&tech) {
        Ok(d) => println!(
            "=== Figure 12 — PDP vs activity ===\n{}",
            dynamic_or::render_fig12(&d)
        ),
        Err(e) => {
            eprintln!("fig12 failed: {e}");
            failures += 1;
        }
    }
    match sram::fig14(&tech) {
        Ok(r) => println!("=== Figure 14 — SRAM SNM ===\n{}", sram::render_fig14(&r)),
        Err(e) => {
            eprintln!("fig14 failed: {e}");
            failures += 1;
        }
    }
    match sram::fig15(&tech) {
        Ok(r) => println!(
            "=== Figure 15 — SRAM latency/leakage ===\n{}",
            sram::render_fig15(&r)
        ),
        Err(e) => {
            eprintln!("fig15 failed: {e}");
            failures += 1;
        }
    }
    println!(
        "=== Figure 17 — sleep devices ===\n{}",
        sleep::render_fig17(&sleep::fig17(&tech))
    );
    match sleep::gated_block_study(&tech) {
        Ok(t) => println!("=== Gated-block companion ===\n{t}"),
        Err(e) => {
            eprintln!("gated-block failed: {e}");
            failures += 1;
        }
    }

    println!("=== Harness telemetry ===");
    let reports = drain_reports();
    for report in &reports {
        println!("{}", report.render());
    }
    println!("{}", nemscmos_harness::supervision_totals(&reports));

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
