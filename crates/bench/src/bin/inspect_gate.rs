//! Diagnostic tool: prints the absolute figures and sizing of one dynamic
//! OR configuration (`cargo run -p nemscmos-bench --bin inspect_gate -- 8 1`).

use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;
use nemscmos_analysis::table::fmt_eng;
use nemscmos_bench::cli::Cli;

fn main() {
    let args = Cli::new(
        "inspect_gate",
        "prints figures and sizing of one dynamic OR configuration",
    )
    .positionals("[FAN_IN] [FAN_OUT]", 2)
    .parse_or_exit();
    let count = |i: usize, default: usize| {
        args.positional.get(i).map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("inspect_gate: {s:?} is not a valid count");
                std::process::exit(2);
            })
        })
    };
    let fan_in = count(0, 8);
    let fan_out = count(1, 1);
    let tech = Technology::n90();
    for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
        let params = DynamicOrParams::new(fan_in, fan_out, style);
        let wk = params.resolved_keeper_width(&tech);
        match DynamicOrGate::build(&tech, &params).characterize(&tech) {
            Ok(f) => println!(
                "{style:?}: keeper {wk:.3} µm, delay {}, P_sw {}, P_leak {}",
                fmt_eng(f.delay, "s"),
                fmt_eng(f.switching_power, "W"),
                fmt_eng(f.leakage_power, "W"),
            ),
            Err(e) => println!("{style:?}: FAILED: {e}"),
        }
    }
}
