//! Diagnostic tool: prints the absolute figures and sizing of one dynamic
//! OR configuration (`cargo run -p nemscmos-bench --bin inspect_gate -- 8 1`).

use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;
use nemscmos_analysis::table::fmt_eng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fan_in: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let fan_out: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let tech = Technology::n90();
    for style in [PdnStyle::Cmos, PdnStyle::HybridNems] {
        let params = DynamicOrParams::new(fan_in, fan_out, style);
        let wk = params.resolved_keeper_width(&tech);
        match DynamicOrGate::build(&tech, &params).characterize(&tech) {
            Ok(f) => println!(
                "{style:?}: keeper {wk:.3} µm, delay {}, P_sw {}, P_leak {}",
                fmt_eng(f.delay, "s"),
                fmt_eng(f.switching_power, "W"),
                fmt_eng(f.leakage_power, "W"),
            ),
            Err(e) => println!("{style:?}: FAILED: {e}"),
        }
    }
}
