//! Regenerates Figure 11: dynamic OR power/delay vs fan-in (fan-out 3).

use nemscmos::gates::PdnStyle;
use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::dynamic_or::{fig11, render_fig11};

fn main() {
    Cli::new(
        "fig11",
        "regenerates Figure 11 (dynamic OR vs fan-in, crossover)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    println!("Figure 11 — dynamic OR vs fan-in at fan-out 3 (CMOS vs hybrid)\n");
    match fig11(&tech) {
        Ok(points) => {
            println!("{}", render_fig11(&points));
            // Headline claim: beyond fan-in ~12 the hybrid gate wins on
            // *both* delay and switching power.
            for fi in [4usize, 8, 12, 16] {
                let get = |style| {
                    points
                        .iter()
                        .find(|p| p.style == style && p.fan_in == fi)
                        .expect("point")
                        .figures
                };
                let c = get(PdnStyle::Cmos);
                let h = get(PdnStyle::HybridNems);
                println!(
                    "fan-in {fi:>2}: delay hybrid/CMOS = {:.2}, power hybrid/CMOS = {:.2}{}",
                    h.delay / c.delay,
                    h.switching_power / c.switching_power,
                    if h.delay < c.delay && h.switching_power < c.switching_power {
                        "  <- hybrid wins both"
                    } else {
                        ""
                    }
                );
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
