//! `spicerun` — run a SPICE-style netlist against the nemscmos engine.
//!
//! ```sh
//! cargo run --release -p nemscmos-bench --bin spicerun -- deck.cir
//! ```
//!
//! Executes every directive in the deck in order:
//! * `.op` prints all node voltages and source currents;
//! * `.tran` prints final node voltages (add `--csv` for the full
//!   waveform table on stdout, or `--vcd <file>` to dump a GTKWave-ready
//!   VCD);
//! * `.dc` prints the sweep table;
//! * `.ac` prints magnitude (dB) per node, driven by the deck's first
//!   voltage source.

use std::process::ExitCode;

use nemscmos::factory::StandardFactory;
use nemscmos::spice::analysis::ac::{ac, log_sweep};
use nemscmos::spice::analysis::dc_sweep::dc_sweep;
use nemscmos::spice::analysis::op::{op, OpOptions};
use nemscmos::spice::analysis::tran::{transient, TranOptions};
use nemscmos::spice::netlist::{parse_deck, Directive, ParsedDeck};
use nemscmos_bench::cli::Cli;

fn run(deck: &ParsedDeck, text: &str, csv: bool, vcd_path: Option<&str>) -> Result<(), String> {
    // Node names sorted for stable output (ground omitted: always 0 V).
    let mut names: Vec<&String> = deck
        .nodes
        .iter()
        .filter(|(_, id)| !id.is_ground())
        .map(|(n, _)| n)
        .collect();
    names.sort();

    for directive in &deck.directives {
        // Each analysis gets a fresh elaboration (analyses freeze topology
        // and mutate device state).
        let factory = StandardFactory::n90();
        let mut fresh = parse_deck(text, &factory).map_err(|e| e.to_string())?;
        match directive {
            Directive::Op => {
                let res = op(&mut fresh.circuit).map_err(|e| e.to_string())?;
                println!("** .op **");
                for n in &names {
                    println!("v({n}) = {:.6} V", res.voltage(deck.nodes[*n]));
                }
                for (src, sref) in &deck.sources {
                    println!("i({src}) = {:.6e} A", res.source_current(*sref));
                }
            }
            Directive::Tran { tstop } => {
                let res = transient(&mut fresh.circuit, *tstop, &TranOptions::default())
                    .map_err(|e| e.to_string())?;
                println!("** .tran {tstop:.3e} s ({} points) **", res.num_points());
                if let Some(path) = vcd_path {
                    let ids: Vec<_> = names.iter().map(|n| deck.nodes[*n]).collect();
                    let mut file = std::fs::File::create(path)
                        .map_err(|e| format!("cannot create {path}: {e}"))?;
                    nemscmos::spice::vcd::write_vcd(&mut file, &fresh.circuit, &res, &ids)
                        .map_err(|e| e.to_string())?;
                    println!("wrote {path}");
                }
                if csv {
                    print!("t");
                    for n in &names {
                        print!(",v({n})");
                    }
                    println!();
                    let traces: Vec<_> =
                        names.iter().map(|n| res.voltage(deck.nodes[*n])).collect();
                    for (k, &t) in res.times().iter().enumerate() {
                        print!("{t:.6e}");
                        for tr in &traces {
                            print!(",{:.6e}", tr.values()[k]);
                        }
                        println!();
                    }
                } else {
                    for n in &names {
                        println!(
                            "v({n}) final = {:.6} V",
                            res.voltage(deck.nodes[*n]).last_value()
                        );
                    }
                }
            }
            Directive::Dc {
                source,
                start,
                stop,
                step,
            } => {
                let src = *deck
                    .sources
                    .get(source)
                    .ok_or_else(|| format!(".dc references unknown source {source}"))?;
                let mut values = Vec::new();
                let mut v = *start;
                while (step > &0.0 && v <= stop + 1e-12) || (step < &0.0 && v >= stop - 1e-12) {
                    values.push(v);
                    v += step;
                }
                let results = dc_sweep(&mut fresh.circuit, src, &values, &OpOptions::default())
                    .map_err(|e| e.to_string())?;
                println!("** .dc {source} **");
                print!("{source:>10}");
                for n in &names {
                    print!("{:>14}", format!("v({n})"));
                }
                println!();
                for (val, r) in values.iter().zip(results.iter()) {
                    print!("{val:>10.4}");
                    for n in &names {
                        print!("{:>14.6}", r.voltage(deck.nodes[*n]));
                    }
                    println!();
                }
            }
            Directive::Ac {
                points_per_decade,
                f_start,
                f_stop,
            } => {
                let (sname, src) = deck
                    .sources
                    .iter()
                    .next()
                    .ok_or_else(|| ".ac needs at least one voltage source".to_string())?;
                let freqs = log_sweep(*f_start, *f_stop, *points_per_decade);
                let res = ac(&mut fresh.circuit, *src, &freqs, &OpOptions::default())
                    .map_err(|e| e.to_string())?;
                println!("** .ac (driven by {sname}) **");
                print!("{:>14}", "freq (Hz)");
                for n in &names {
                    print!("{:>14}", format!("|v({n})| dB"));
                }
                println!();
                for (k, &f) in freqs.iter().enumerate() {
                    print!("{f:>14.4e}");
                    for n in &names {
                        let v = res.voltage(deck.nodes[*n])[k];
                        print!("{:>14.3}", v.db());
                    }
                    println!();
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = Cli::new(
        "spicerun",
        "run a SPICE-style netlist against the nemscmos engine",
    )
    .switch("--csv", "print full .tran waveform tables as CSV")
    .value("--vcd", "dump .tran waveforms to a GTKWave-ready VCD file")
    .positionals("<deck.cir>", 1)
    .parse_or_exit();
    let csv = args.has("--csv");
    let vcd_path = args.get("--vcd").map(str::to_string);
    let path = match args.positional.first() {
        Some(p) => p.clone(),
        None => {
            eprintln!("usage: spicerun [--csv] [--vcd out.vcd] <deck.cir>");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let factory = StandardFactory::n90();
    let deck = match parse_deck(&text, &factory) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if deck.directives.is_empty() {
        eprintln!("deck has no analysis directives (.op/.tran/.dc/.ac)");
        return ExitCode::FAILURE;
    }
    match run(&deck, &text, csv, vcd_path.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("analysis error: {e}");
            ExitCode::FAILURE
        }
    }
}
