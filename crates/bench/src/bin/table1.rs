//! Regenerates Table 1: I_ON / I_OFF of the calibrated devices.

use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::device_tables::render_table1;

fn main() {
    Cli::new("table1", "regenerates Table 1 (device on/off currents)").parse_or_exit();
    println!("Table 1 — device on/off currents at 90 nm, V_dd = 1.2 V\n");
    println!("{}", render_table1());
}
