//! Regenerates Figure 10: 8-input dynamic OR power/delay vs fan-out.

use nemscmos::gates::PdnStyle;
use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::dynamic_or::{fig10, render_fig10};

fn main() {
    Cli::new(
        "fig10",
        "regenerates Figure 10 (8-input dynamic OR vs fan-out)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    println!("Figure 10 — 8-input dynamic OR vs fan-out (CMOS vs hybrid)\n");
    match fig10(&tech) {
        Ok(points) => {
            println!("{}", render_fig10(&points));
            // Headline claims: 60-80% switching-power saving, 10-20% delay
            // penalty across fan-out.
            for fo in [1usize, 5] {
                let get = |style| {
                    points
                        .iter()
                        .find(|p| p.style == style && p.fan_out == fo)
                        .expect("point")
                        .figures
                };
                let c = get(PdnStyle::Cmos);
                let h = get(PdnStyle::HybridNems);
                println!(
                    "FO{fo}: hybrid saves {:.0}% switching power, delay {:+.0}%",
                    (1.0 - h.switching_power / c.switching_power) * 100.0,
                    (h.delay / c.delay - 1.0) * 100.0
                );
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
