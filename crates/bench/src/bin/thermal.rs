//! Leakage–temperature coupling study (the paper's ref. \[5\] motivation).

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::thermal::{leakage_vs_temperature, runaway_study};

fn main() {
    Cli::new("thermal", "leakage-temperature coupling study").parse_or_exit();
    let tech = Technology::n90();
    println!("Leakage vs temperature (8-input dynamic OR core)\n");
    match leakage_vs_temperature(&tech) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("leakage sweep failed: {e}");
            std::process::exit(1);
        }
    }
    println!("Self-consistent junction temperature (50k gates, 0.4 W dynamic)\n");
    match runaway_study(&tech) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("runaway study failed: {e}");
            std::process::exit(1);
        }
    }
}
