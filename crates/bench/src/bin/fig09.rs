//! Regenerates Figure 9: delay vs noise margin of an 8-input CMOS dynamic
//! OR gate under process variation.

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::dynamic_or::{fig09, fig09_monte_carlo, render_fig09};

fn main() {
    Cli::new(
        "fig09",
        "regenerates Figure 9 (keeper sizing trade-off under variation)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    println!("Figure 9 — keeper sizing trade-off (8-input CMOS dynamic OR)\n");
    match fig09(&tech) {
        Ok(curves) => println!("{}", render_fig09(&curves)),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
    println!("Monte Carlo cross-check (W_keeper = 1 µm, 48 trials per σ):\n");
    for sigma in [0.05, 0.10, 0.15] {
        match fig09_monte_carlo(&tech, 1.0, sigma, 48, 2007) {
            Ok(s) => println!(
                "σ = {:>3.0}%: NM mean {:.3} V, σ_NM {:.3} V, mean−3σ {:.3} V, worst draw {:.3} V",
                sigma * 100.0,
                s.mean,
                s.std_dev,
                s.mean_plus_sigma(-3.0),
                s.min
            ),
            Err(e) => {
                eprintln!("Monte Carlo failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
