//! Paper-claims conformance suite.
//!
//! Re-measures every metric named in `crates/verify/claims.toml` by
//! running the paper's experiments through the harness (Figure 11,
//! Figures 14/15, Figure 17, Table 1), then evaluates the claims
//! registry into a scoreboard: one pass/fail line per claim with the
//! measured-vs-expected margin.
//!
//! Exit status: `0` when every claim passes, `1` on any failure (CI
//! treats a red scoreboard as a regression against the paper).

use std::collections::BTreeMap;
use std::process::ExitCode;

use nemscmos::gates::PdnStyle;
use nemscmos::sram::SramKind;
use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::{device_tables, dynamic_or, sleep, sram};
use nemscmos_verify::claims;

fn record(metrics: &mut BTreeMap<String, f64>, key: &str, value: f64) {
    metrics.insert(key.to_string(), value);
}

/// Figure 11: smallest measured fan-in at which the hybrid OR gate is at
/// least as fast as the CMOS one.
fn crossover_fan_in(tech: &Technology) -> Result<Option<f64>, String> {
    let points = dynamic_or::fig11(tech).map_err(|e| format!("fig11: {e}"))?;
    let mut fan_ins: Vec<usize> = points.iter().map(|p| p.fan_in).collect();
    fan_ins.sort_unstable();
    fan_ins.dedup();
    for fi in fan_ins {
        let get = |style: PdnStyle| {
            points
                .iter()
                .find(|p| p.style == style && p.fan_in == fi)
                .map(|p| p.figures.delay)
        };
        if let (Some(c), Some(h)) = (get(PdnStyle::Cmos), get(PdnStyle::HybridNems)) {
            if h <= c {
                return Ok(Some(fi as f64));
            }
        }
    }
    Ok(None)
}

fn measure(metrics: &mut BTreeMap<String, f64>) -> Result<(), String> {
    let tech = Technology::n90();

    println!("measuring Figure 11 (dynamic OR fan-in sweep)...");
    if let Some(fi) = crossover_fan_in(&tech)? {
        record(metrics, "crossover_fan_in", fi);
    }

    println!("measuring Figure 14 (SRAM butterfly / SNM)...");
    let fig14 = sram::fig14(&tech).map_err(|e| format!("fig14: {e}"))?;
    let snm_of = |kind: SramKind| {
        fig14
            .iter()
            .find(|r| r.kind == kind)
            .map(|r| r.snm)
            .ok_or_else(|| format!("fig14 missing {kind:?}"))
    };
    let snm_conv = snm_of(SramKind::Conventional)?;
    let snm_hybrid = snm_of(SramKind::Hybrid)?;
    record(
        metrics,
        "sram_snm_delta_pct",
        100.0 * (snm_hybrid - snm_conv) / snm_conv,
    );

    println!("measuring Figure 15 (SRAM latency / standby leakage)...");
    let fig15 = sram::fig15(&tech).map_err(|e| format!("fig15: {e}"))?;
    let row_of = |kind: SramKind| {
        fig15
            .iter()
            .find(|r| r.kind == kind)
            .ok_or_else(|| format!("fig15 missing {kind:?}"))
    };
    let conv = row_of(SramKind::Conventional)?;
    let hybrid = row_of(SramKind::Hybrid)?;
    record(
        metrics,
        "sram_leakage_reduction",
        conv.standby_current / hybrid.standby_current,
    );
    record(
        metrics,
        "sram_latency_delta_pct",
        100.0 * (hybrid.read_latency - conv.read_latency) / conv.read_latency,
    );

    println!("measuring Figure 17 (sleep-transistor I_OFF)...");
    let fig17 = sleep::fig17(&tech);
    let worst_ratio = fig17
        .iter()
        .map(|(cmos, nems)| cmos.i_off / nems.i_off)
        .fold(f64::INFINITY, f64::min);
    if worst_ratio.is_finite() {
        record(metrics, "sleep_ioff_ratio_min", worst_ratio);
    }

    println!("measuring Table 1 (calibrated device currents)...");
    for row in device_tables::table1() {
        let prefix = if row.device.starts_with("CMOS") {
            "cmos"
        } else {
            "nems"
        };
        record(metrics, &format!("{prefix}_ion_a_per_um"), row.ion);
        record(metrics, &format!("{prefix}_ioff_a_per_um"), row.ioff);
    }
    Ok(())
}

fn main() -> ExitCode {
    Cli::new(
        "conformance",
        "re-measures every claim in claims.toml into a pass/fail scoreboard",
    )
    .parse_or_exit();
    let registry = claims::builtin();
    let mut metrics = BTreeMap::new();
    if let Err(e) = measure(&mut metrics) {
        eprintln!("conformance measurement failed: {e}");
        return ExitCode::FAILURE;
    }

    let scoreboard = claims::evaluate(&registry, &metrics);
    println!("\nDAC 2007 claims scoreboard\n");
    println!("{scoreboard}");
    if scoreboard.all_pass() {
        ExitCode::SUCCESS
    } else {
        if !scoreboard.headlines_pass() {
            eprintln!("\nheadline claim(s) failing — the reproduction no longer supports the paper's core results");
        }
        ExitCode::FAILURE
    }
}
