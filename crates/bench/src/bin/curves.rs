//! Dumps the device I–V characteristics behind the paper's Section 2:
//! the CMOS transfer/output families and the NEMS hysteresis loop
//! (CSV on stdout, one block per curve family).

use nemscmos::devices::characterize::id_vg_curve;
use nemscmos::devices::mosfet::{MosModel, Polarity};
use nemscmos::devices::nemfet::{Nemfet, NemsModel};
use nemscmos::spice::analysis::dc_sweep::dc_sweep;
use nemscmos::spice::analysis::op::OpOptions;
use nemscmos::spice::circuit::Circuit;
use nemscmos::spice::waveform::Waveform;
use nemscmos_bench::cli::Cli;

fn main() {
    Cli::new("curves", "dumps device I-V characteristics as CSV").parse_or_exit();
    let vdd = 1.2;

    println!("# Id-Vg transfer curves at Vds = {vdd} V (A/µm)");
    println!("vg,nmos90,pmos90,nmos90hvt");
    let n = id_vg_curve(&MosModel::nmos_90nm(), vdd, 61);
    let p = id_vg_curve(&MosModel::pmos_90nm(), vdd, 61);
    let h = id_vg_curve(&MosModel::nmos_90nm_hvt(), vdd, 61);
    for k in 0..n.len() {
        println!("{:.3},{:.6e},{:.6e},{:.6e}", n[k].0, n[k].1, p[k].1, h[k].1);
    }

    println!("# Id-Vd output family, nmos90 (A/µm)");
    print!("vd");
    let vgs = [0.4, 0.6, 0.8, 1.0, 1.2];
    for vg in vgs {
        print!(",vg={vg}");
    }
    println!();
    let m = MosModel::nmos_90nm();
    for k in 0..=60 {
        let vd = vdd * k as f64 / 60.0;
        print!("{vd:.3}");
        for vg in vgs {
            let (i, ..) = m.ids(vg, vd, 0.0, 1.0);
            print!(",{i:.6e}");
        }
        println!();
    }

    println!("# NEMS hysteresis loop: drain current vs gate, up then down sweep");
    println!("vg,direction,id");
    let mut ckt = Circuit::new();
    let vd_node = ckt.node("d_rail");
    let g = ckt.node("g");
    let d = ckt.node("d");
    let supply = ckt.vsource(vd_node, Circuit::GROUND, Waveform::dc(vdd));
    let vg_src = ckt.vsource(g, Circuit::GROUND, Waveform::dc(0.0));
    ckt.resistor(vd_node, d, 10.0); // near-ideal drain bias, probes current
    ckt.add_device(Nemfet::new(
        "x1",
        NemsModel::nems_90nm(Polarity::Nmos),
        d,
        g,
        Circuit::GROUND,
        1.0,
    ));
    let n_pts = 61;
    let up: Vec<f64> = (0..n_pts)
        .map(|k| vdd * k as f64 / (n_pts - 1) as f64)
        .collect();
    let down: Vec<f64> = up.iter().rev().copied().collect();
    let run = |ckt: &mut Circuit, vals: &[f64]| {
        dc_sweep(ckt, vg_src, vals, &OpOptions::default()).expect("hysteresis sweep")
    };
    for (vg, r) in up.iter().zip(run(&mut ckt, &up)) {
        println!("{vg:.3},up,{:.6e}", -r.source_current(supply));
    }
    for (vg, r) in down.iter().zip(run(&mut ckt, &down)) {
        println!("{vg:.3},down,{:.6e}", -r.source_current(supply));
    }
}
