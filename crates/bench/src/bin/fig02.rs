//! Regenerates Figure 2: the subthreshold-swing survey.

use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::device_tables::render_fig02;

fn main() {
    Cli::new("fig02", "regenerates Figure 2 (subthreshold-swing survey)").parse_or_exit();
    println!("Figure 2 — minimum subthreshold swing by device family\n");
    println!("{}", render_fig02());
}
