//! `perfbase` — the first wall-clock benchmark baseline of the solver.
//!
//! ```sh
//! cargo run --release -p nemscmos-bench --bin perfbase -- [--iters N] [--out PATH] [--smoke]
//! ```
//!
//! Times every deck of the verify differential fleet plus a domino
//! (dynamic OR) fan-in sweep twice: once with every optimization
//! disabled — [`SolveProfile::legacy_linear_algebra`] plus
//! [`SolveProfile::scalar_device_eval`], the exact pre-fast-path code
//! paths — and once on the default profile (pattern-frozen assembly,
//! symbolic LU reuse, linear-circuit bypass, batched SoA device
//! evaluation). Both runs use this same driver, so the before/after
//! numbers are directly comparable, and the differential suites
//! guarantee the paths produce bitwise-identical results.
//!
//! Writes the measurements (wall-clock min/median per deck, speedup,
//! the fast-path counter deltas, and the eval-vs-solve time
//! attribution that decomposes where each deck's Newton time goes) as
//! canonical JSON to `--out` (default `BENCH_9.json`, committed at the
//! repo root as the baseline).
//!
//! `--smoke` runs a reduced-iteration pass without writing the baseline
//! file and asserts the fast path actually engaged: symbolic reuses and
//! slot-cache hits observed, batched evaluation engaged on device decks
//! and bitwise-identical to the scalar path, fallback count sane,
//! legacy runs clean of fast-path counters, device-free decks clean of
//! eval attribution. Prints `perfbase smoke OK` on success; exits
//! non-zero on violation. `ci.sh` runs this mode.
//!
//! [`SolveProfile::legacy_linear_algebra`]: nemscmos_spice::profile::SolveProfile::legacy_linear_algebra
//! [`SolveProfile::scalar_device_eval`]: nemscmos_spice::profile::SolveProfile::scalar_device_eval

use std::process::ExitCode;
use std::time::Instant;

use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_harness::Json;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::profile::{self, SolveProfile};
use nemscmos_spice::stats::{self, SolverStats};
use nemscmos_verify::diff;

/// One benchmark workload: a named closure that builds its circuit
/// fresh and runs one full transient.
struct Workload {
    name: String,
    unknowns: usize,
    run: Box<dyn Fn()>,
}

fn verify_deck_workloads() -> Vec<Workload> {
    diff::decks()
        .into_iter()
        .map(|deck| {
            let (ckt, _) = deck.build();
            let unknowns = {
                let mut c = ckt;
                c.validate().expect("verify deck validates");
                c.num_unknowns()
            };
            Workload {
                name: format!("verify:{}", deck.name),
                unknowns,
                run: Box::new(move || {
                    let (mut ckt, _) = deck.build();
                    transient(&mut ckt, deck.tstop, &TranOptions::default())
                        .unwrap_or_else(|e| panic!("deck `{}` failed: {e}", deck.name));
                }),
            }
        })
        .collect()
}

fn domino_workload(fan_in: usize, fan_out: usize) -> Workload {
    let tech = Technology::n90();
    let params = DynamicOrParams::new(fan_in, fan_out, PdnStyle::HybridNems);
    let unknowns = {
        let mut built = DynamicOrGate::build(&tech, &params);
        built.circuit.validate().expect("domino deck validates");
        built.circuit.num_unknowns()
    };
    Workload {
        name: format!("domino:or{fan_in}-fo{fan_out}"),
        unknowns,
        run: Box::new(move || {
            let mut built = DynamicOrGate::build(&tech, &params);
            let opts = TranOptions {
                dt_max: Some(built.period / 400.0),
                ..Default::default()
            };
            transient(&mut built.circuit, built.period, &opts)
                .unwrap_or_else(|e| panic!("domino or{fan_in} failed: {e}"));
        }),
    }
}

/// Wall-clock samples of `iters` runs (after one warm-up), in seconds.
fn time_runs(iters: usize, f: &dyn Fn()) -> Vec<f64> {
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples
}

fn legacy_profile() -> SolveProfile {
    SolveProfile {
        legacy_linear_algebra: true,
        scalar_device_eval: true,
        ..Default::default()
    }
}

struct Measurement {
    name: String,
    unknowns: usize,
    legacy_s: Vec<f64>,
    fast_s: Vec<f64>,
    legacy_stats: SolverStats,
    fast_stats: SolverStats,
}

/// Fraction of attributed Newton time spent in the device-eval section
/// (0 when nothing was attributed, i.e. device-free decks).
fn eval_share(st: &SolverStats) -> f64 {
    let total = st.device_eval_ns + st.linear_solve_ns;
    if total == 0 {
        0.0
    } else {
        st.device_eval_ns as f64 / total as f64
    }
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.legacy_s[0] / self.fast_s[0].max(1e-12)
    }

    fn to_json(&self) -> Json {
        let ms = |s: &[f64], k: usize| Json::Num(s[k.min(s.len() - 1)] * 1e3);
        let counters = |st: &SolverStats| {
            Json::Obj(vec![
                ("newton".into(), Json::Num(st.newton_iterations as f64)),
                ("lu".into(), Json::Num(st.lu_factorizations as f64)),
                ("slot_hits".into(), Json::Num(st.slot_cache_hits as f64)),
                ("sym_reuse".into(), Json::Num(st.symbolic_reuses as f64)),
                ("refac_fb".into(), Json::Num(st.refactor_fallbacks as f64)),
                ("bypass".into(), Json::Num(st.bypass_solves as f64)),
                ("batched".into(), Json::Num(st.batched_evals as f64)),
                ("eval_ms".into(), Json::Num(st.device_eval_ns as f64 * 1e-6)),
                (
                    "solve_ms".into(),
                    Json::Num(st.linear_solve_ns as f64 * 1e-6),
                ),
                ("eval_share".into(), Json::Num(eval_share(st))),
            ])
        };
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("unknowns".into(), Json::Num(self.unknowns as f64)),
            ("legacy_ms_min".into(), ms(&self.legacy_s, 0)),
            (
                "legacy_ms_median".into(),
                ms(&self.legacy_s, self.legacy_s.len() / 2),
            ),
            ("fast_ms_min".into(), ms(&self.fast_s, 0)),
            (
                "fast_ms_median".into(),
                ms(&self.fast_s, self.fast_s.len() / 2),
            ),
            ("speedup".into(), Json::Num(self.speedup())),
            ("legacy_counters".into(), counters(&self.legacy_stats)),
            ("fast_counters".into(), counters(&self.fast_stats)),
        ])
    }
}

fn measure(w: &Workload, iters: usize) -> Measurement {
    // Counter deltas from one dedicated run per path, outside the timed
    // samples so instrumentation reads never skew the wall clock.
    let ((), legacy_stats) = profile::with(legacy_profile(), || stats::measure(|| (w.run)()));
    let ((), fast_stats) = stats::measure(|| (w.run)());
    let legacy_s = profile::with(legacy_profile(), || time_runs(iters, &w.run));
    let fast_s = time_runs(iters, &w.run);
    println!(
        "{:<28} n={:<3} legacy {:>8.2} ms  fast {:>8.2} ms  speedup {:>5.2}x  \
         (lu {} -> {}, sym-reuse {}, slot-hits {}, bypass {}, fallbacks {}, \
         batched {}, eval-share {:.0}%)",
        w.name,
        w.unknowns,
        legacy_s[0] * 1e3,
        fast_s[0] * 1e3,
        legacy_s[0] / fast_s[0].max(1e-12),
        legacy_stats.lu_factorizations,
        fast_stats.lu_factorizations,
        fast_stats.symbolic_reuses,
        fast_stats.slot_cache_hits,
        fast_stats.bypass_solves,
        fast_stats.refactor_fallbacks,
        fast_stats.batched_evals,
        eval_share(&fast_stats) * 100.0,
    );
    Measurement {
        name: w.name.clone(),
        unknowns: w.unknowns,
        legacy_s,
        fast_s,
        legacy_stats,
        fast_stats,
    }
}

/// The smoke contract: the fast path must demonstrably engage, stay
/// sane, and leave legacy runs untouched. Returns violation messages.
fn smoke_violations(results: &[Measurement]) -> Vec<String> {
    let mut violations = Vec::new();
    for m in results {
        let f = &m.fast_stats;
        let l = &m.legacy_stats;
        // The time-attribution counters are profile-independent brackets,
        // so only the discrete fast-path counters must stay zero here.
        if l.slot_cache_hits
            + l.symbolic_reuses
            + l.refactor_fallbacks
            + l.bypass_solves
            + l.batched_evals
            > 0
        {
            violations.push(format!(
                "{}: legacy run recorded fast-path counters ({l:?})",
                m.name
            ));
        }
        if f.refactor_fallbacks > f.lu_factorizations {
            violations.push(format!(
                "{}: more refactor fallbacks ({}) than factorizations ({})",
                m.name, f.refactor_fallbacks, f.lu_factorizations
            ));
        }
    }
    // The sparse decks must exercise the symbolic-reuse machinery.
    let sparse: Vec<_> = results.iter().filter(|m| m.unknowns > 64).collect();
    if sparse.is_empty() {
        violations.push("no deck crossed the sparse threshold".into());
    }
    if !sparse.iter().any(|m| m.fast_stats.symbolic_reuses > 0) {
        violations.push("no sparse deck recorded a symbolic LU reuse".into());
    }
    if !sparse.iter().any(|m| m.fast_stats.slot_cache_hits > 0) {
        violations.push("no sparse deck recorded a slot-cache hit".into());
    }
    // The linear decks must exercise the factorization bypass.
    if !results.iter().any(|m| m.fast_stats.bypass_solves > 0) {
        violations.push("no deck recorded a bypass solve".into());
    }
    // Device decks must run batched, and device-free decks must record
    // exactly zero eval attribution (the device section never executes).
    if !results.iter().any(|m| m.fast_stats.batched_evals > 0) {
        violations.push("no deck recorded a batched device evaluation".into());
    }
    for m in results {
        if m.fast_stats.batched_evals == 0 && m.fast_stats.device_eval_ns > 0 {
            violations.push(format!(
                "{}: device-free deck attributed {} ns of device-eval time",
                m.name, m.fast_stats.device_eval_ns
            ));
        }
    }
    violations
}

fn main() -> ExitCode {
    let args = Cli::new("perfbase", "sparse fast-path benchmark baseline")
        .value("--iters", "timing iterations per workload [default: 5]")
        .value("--out", "output JSON path [default: BENCH_9.json]")
        .switch("--smoke", "reduced CI smoke variant")
        .parse_or_exit();
    let mut iters: usize = args.num("--iters", 5);
    let out = args.get("--out").unwrap_or("BENCH_9.json").to_string();
    let smoke = args.has("--smoke");
    if smoke {
        iters = iters.min(2);
    }

    let mut workloads = verify_deck_workloads();
    // The domino fan-in sweep: the paper's workhorse circuit at growing
    // PDN width. The fan-in-16 / fan-out-8 point crosses the sparse
    // threshold; fan-in 24 pushes deeper into the regime where frozen
    // linear algebra makes the per-iteration solve cheap and device
    // evaluation dominates — the deck that isolates the batched-eval win.
    for fan_in in [4usize, 8, 12, 16, 24] {
        workloads.push(domino_workload(fan_in, 8));
    }
    if smoke {
        // Keep only a representative subset: one linear deck (bypass),
        // one wide deck (sparse), and the headline domino point.
        workloads.retain(|w| {
            w.name == "verify:rc-ladder-pulse"
                || w.name == "verify:wide-rc-ladder"
                || w.name == "domino:or16-fo8"
        });
    }

    println!(
        "perfbase: {} workloads, {iters} timed iterations each (plus warm-up)",
        workloads.len()
    );
    let results: Vec<Measurement> = workloads.iter().map(|w| measure(w, iters)).collect();

    if smoke {
        let mut violations = smoke_violations(&results);
        // Batched and scalar device evaluation must stay bitwise
        // identical on the differential fleet (cheap: snapshot decks).
        for deck in diff::decks() {
            if let Err(msg) = diff::batched_vs_scalar(&deck) {
                violations.push(format!("batched-vs-scalar differential: {msg}"));
            }
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("perfbase smoke violation: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("perfbase smoke OK");
        return ExitCode::SUCCESS;
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("perfbase".into())),
        ("version".into(), Json::Num(2.0)),
        ("iters".into(), Json::Num(iters as f64)),
        (
            "decks".into(),
            Json::Arr(results.iter().map(Measurement::to_json).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, doc.render() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("baseline written to {out}");
    ExitCode::SUCCESS
}
