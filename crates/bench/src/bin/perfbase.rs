//! `perfbase` — wall-clock benchmark baselines of the solver.
//!
//! ```sh
//! cargo run --release -p nemscmos-bench --bin perfbase -- \
//!     [--iters N] [--out PATH] [--smoke] [--scaling]
//! ```
//!
//! **Default mode** times every deck of the verify differential fleet
//! plus a domino (dynamic OR) fan-in sweep twice: once with every
//! optimization disabled — [`SolveProfile::legacy_linear_algebra`] plus
//! [`SolveProfile::scalar_device_eval`], the exact pre-fast-path code
//! paths — and once on the default profile (pattern-frozen assembly,
//! symbolic LU reuse, linear-circuit bypass, batched SoA device
//! evaluation). Both runs use this same driver, so the before/after
//! numbers are directly comparable, and the differential suites
//! guarantee the paths produce bitwise-identical results. Writes the
//! measurements (wall-clock min/median per deck, speedup, the fast-path
//! counter deltas including fill and ordering attribution) as canonical
//! JSON to `--out` (default `BENCH_9.json`).
//!
//! **`--scaling`** sweeps the `nemscmos-gen` generated circuit families
//! — SRAM arrays from 4×4 up to 64×64 (tens to thousands of unknowns)
//! and wide domino fanout trees — extracting each deck's DC Jacobian
//! and measuring, on the *same matrix*: minimum-degree ordering time,
//! natural-order vs ordered factorization time and fill (nnz(L+U)),
//! ordered refactor-replay time, and solve residuals for both paths.
//! SRAM decks then run a full transient under the default profile to
//! prove the end-to-end path holds at scale. Writes the curve to
//! `--out` (default `BENCH_10.json`, committed at the repo root).
//!
//! `--smoke` runs a reduced pass without writing the baseline file and
//! asserts the machinery actually engaged. In default mode: symbolic
//! reuses and slot-cache hits observed, batched evaluation engaged and
//! bitwise-identical to the scalar path, fallback count sane, legacy
//! runs clean of fast-path counters. With `--scaling`: the two smallest
//! SRAM sizes plus one domino tree, asserting the ordering never
//! worsens fill, both factorizations solve to small residual, and the
//! transient records fill/ordering attribution. `ci.sh` runs both
//! smoke modes.
//!
//! [`SolveProfile::legacy_linear_algebra`]: nemscmos_spice::profile::SolveProfile::legacy_linear_algebra
//! [`SolveProfile::scalar_device_eval`]: nemscmos_spice::profile::SolveProfile::scalar_device_eval

use std::process::ExitCode;
use std::time::Instant;

use nemscmos::gates::{DynamicOrGate, DynamicOrParams, PdnStyle};
use nemscmos::gen::{DominoTreeGen, GenDeck, SramArrayGen};
use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_harness::Json;
use nemscmos_numeric::sparse::{min_degree, CscMatrix, SparseLu};
use nemscmos_spice::analysis::probe::dc_jacobian;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::analysis::OpOptions;
use nemscmos_spice::profile::{self, SolveProfile};
use nemscmos_spice::stats::{self, SolverStats};
use nemscmos_verify::diff;

/// One benchmark workload: a named closure that builds its circuit
/// fresh and runs one full transient.
struct Workload {
    name: String,
    unknowns: usize,
    run: Box<dyn Fn()>,
}

fn verify_deck_workloads() -> Vec<Workload> {
    diff::decks()
        .into_iter()
        .map(|deck| {
            let (ckt, _) = deck.build();
            let unknowns = {
                let mut c = ckt;
                c.validate().expect("verify deck validates");
                c.num_unknowns()
            };
            Workload {
                name: format!("verify:{}", deck.name),
                unknowns,
                run: Box::new(move || {
                    let (mut ckt, _) = deck.build();
                    transient(&mut ckt, deck.tstop, &TranOptions::default())
                        .unwrap_or_else(|e| panic!("deck `{}` failed: {e}", deck.name));
                }),
            }
        })
        .collect()
}

fn domino_workload(fan_in: usize, fan_out: usize) -> Workload {
    let tech = Technology::n90();
    let params = DynamicOrParams::new(fan_in, fan_out, PdnStyle::HybridNems);
    let unknowns = {
        let mut built = DynamicOrGate::build(&tech, &params);
        built.circuit.validate().expect("domino deck validates");
        built.circuit.num_unknowns()
    };
    Workload {
        name: format!("domino:or{fan_in}-fo{fan_out}"),
        unknowns,
        run: Box::new(move || {
            let mut built = DynamicOrGate::build(&tech, &params);
            let opts = TranOptions {
                dt_max: Some(built.period / 400.0),
                ..Default::default()
            };
            transient(&mut built.circuit, built.period, &opts)
                .unwrap_or_else(|e| panic!("domino or{fan_in} failed: {e}"));
        }),
    }
}

/// Wall-clock samples of `iters` runs (after one warm-up), in seconds.
fn time_runs(iters: usize, f: &dyn Fn()) -> Vec<f64> {
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_unstable_by(f64::total_cmp);
    samples
}

fn legacy_profile() -> SolveProfile {
    SolveProfile {
        legacy_linear_algebra: true,
        scalar_device_eval: true,
        ..Default::default()
    }
}

struct Measurement {
    name: String,
    unknowns: usize,
    legacy_s: Vec<f64>,
    fast_s: Vec<f64>,
    legacy_stats: SolverStats,
    fast_stats: SolverStats,
}

/// Fraction of attributed Newton time spent in the device-eval section
/// (0 when nothing was attributed, i.e. device-free decks).
fn eval_share(st: &SolverStats) -> f64 {
    let total = st.device_eval_ns + st.linear_solve_ns;
    if total == 0 {
        0.0
    } else {
        st.device_eval_ns as f64 / total as f64
    }
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.legacy_s[0] / self.fast_s[0].max(1e-12)
    }

    fn to_json(&self) -> Json {
        let ms = |s: &[f64], k: usize| Json::Num(s[k.min(s.len() - 1)] * 1e3);
        let counters = |st: &SolverStats| {
            Json::Obj(vec![
                ("newton".into(), Json::Int(st.newton_iterations as i64)),
                ("lu".into(), Json::Int(st.lu_factorizations as i64)),
                ("slot_hits".into(), Json::Int(st.slot_cache_hits as i64)),
                ("sym_reuse".into(), Json::Int(st.symbolic_reuses as i64)),
                ("refac_fb".into(), Json::Int(st.refactor_fallbacks as i64)),
                ("bypass".into(), Json::Int(st.bypass_solves as i64)),
                ("batched".into(), Json::Int(st.batched_evals as i64)),
                ("eval_ms".into(), Json::Num(st.device_eval_ns as f64 * 1e-6)),
                (
                    "solve_ms".into(),
                    Json::Num(st.linear_solve_ns as f64 * 1e-6),
                ),
                ("eval_share".into(), Json::Num(eval_share(st))),
                ("fill_nnz".into(), Json::Int(st.fill_nnz as i64)),
                (
                    "ordering_ms".into(),
                    Json::Num(st.ordering_ns as f64 * 1e-6),
                ),
            ])
        };
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("unknowns".into(), Json::Int(self.unknowns as i64)),
            ("legacy_ms_min".into(), ms(&self.legacy_s, 0)),
            (
                "legacy_ms_median".into(),
                ms(&self.legacy_s, self.legacy_s.len() / 2),
            ),
            ("fast_ms_min".into(), ms(&self.fast_s, 0)),
            (
                "fast_ms_median".into(),
                ms(&self.fast_s, self.fast_s.len() / 2),
            ),
            ("speedup".into(), Json::Num(self.speedup())),
            ("legacy_counters".into(), counters(&self.legacy_stats)),
            ("fast_counters".into(), counters(&self.fast_stats)),
        ])
    }
}

fn measure(w: &Workload, iters: usize) -> Measurement {
    // Counter deltas from one dedicated run per path, outside the timed
    // samples so instrumentation reads never skew the wall clock.
    let ((), legacy_stats) = profile::with(legacy_profile(), || stats::measure(|| (w.run)()));
    let ((), fast_stats) = stats::measure(|| (w.run)());
    let legacy_s = profile::with(legacy_profile(), || time_runs(iters, &w.run));
    let fast_s = time_runs(iters, &w.run);
    println!(
        "{:<28} n={:<3} legacy {:>8.2} ms  fast {:>8.2} ms  speedup {:>5.2}x  \
         (lu {} -> {}, sym-reuse {}, slot-hits {}, bypass {}, fallbacks {}, \
         batched {}, eval-share {:.0}%, fill {}, order {:.2} ms)",
        w.name,
        w.unknowns,
        legacy_s[0] * 1e3,
        fast_s[0] * 1e3,
        legacy_s[0] / fast_s[0].max(1e-12),
        legacy_stats.lu_factorizations,
        fast_stats.lu_factorizations,
        fast_stats.symbolic_reuses,
        fast_stats.slot_cache_hits,
        fast_stats.bypass_solves,
        fast_stats.refactor_fallbacks,
        fast_stats.batched_evals,
        eval_share(&fast_stats) * 100.0,
        fast_stats.fill_nnz,
        fast_stats.ordering_ns as f64 * 1e-6,
    );
    Measurement {
        name: w.name.clone(),
        unknowns: w.unknowns,
        legacy_s,
        fast_s,
        legacy_stats,
        fast_stats,
    }
}

/// The smoke contract: the fast path must demonstrably engage, stay
/// sane, and leave legacy runs untouched. Returns violation messages.
fn smoke_violations(results: &[Measurement]) -> Vec<String> {
    let mut violations = Vec::new();
    for m in results {
        let f = &m.fast_stats;
        let l = &m.legacy_stats;
        // The time-attribution counters are profile-independent brackets,
        // so only the discrete fast-path counters must stay zero here.
        if l.slot_cache_hits
            + l.symbolic_reuses
            + l.refactor_fallbacks
            + l.bypass_solves
            + l.batched_evals
            > 0
        {
            violations.push(format!(
                "{}: legacy run recorded fast-path counters ({l:?})",
                m.name
            ));
        }
        if f.refactor_fallbacks > f.lu_factorizations {
            violations.push(format!(
                "{}: more refactor fallbacks ({}) than factorizations ({})",
                m.name, f.refactor_fallbacks, f.lu_factorizations
            ));
        }
    }
    // The sparse decks must exercise the symbolic-reuse machinery.
    let sparse: Vec<_> = results.iter().filter(|m| m.unknowns > 64).collect();
    if sparse.is_empty() {
        violations.push("no deck crossed the sparse threshold".into());
    }
    if !sparse.iter().any(|m| m.fast_stats.symbolic_reuses > 0) {
        violations.push("no sparse deck recorded a symbolic LU reuse".into());
    }
    if !sparse.iter().any(|m| m.fast_stats.slot_cache_hits > 0) {
        violations.push("no sparse deck recorded a slot-cache hit".into());
    }
    // The linear decks must exercise the factorization bypass.
    if !results.iter().any(|m| m.fast_stats.bypass_solves > 0) {
        violations.push("no deck recorded a bypass solve".into());
    }
    // Device decks must run batched, and device-free decks must record
    // exactly zero eval attribution (the device section never executes).
    if !results.iter().any(|m| m.fast_stats.batched_evals > 0) {
        violations.push("no deck recorded a batched device evaluation".into());
    }
    for m in results {
        if m.fast_stats.batched_evals == 0 && m.fast_stats.device_eval_ns > 0 {
            violations.push(format!(
                "{}: device-free deck attributed {} ns of device-eval time",
                m.name, m.fast_stats.device_eval_ns
            ));
        }
    }
    violations
}

/// One point of the scaling curve: matrix-level ordering/factorization
/// measurements on a generated deck's DC Jacobian, plus (for SRAM
/// decks) the end-to-end transient under the default profile.
struct ScalingPoint {
    name: String,
    unknowns: usize,
    nnz_a: usize,
    ordering_ms: f64,
    natural_ms: f64,
    ordered_ms: f64,
    refactor_ms: f64,
    natural_fill: usize,
    ordered_fill: usize,
    natural_residual: f64,
    ordered_residual: f64,
    tran: Option<(f64, SolverStats)>,
}

impl ScalingPoint {
    fn factor_speedup(&self) -> f64 {
        self.natural_ms / self.ordered_ms.max(1e-9)
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("unknowns".into(), Json::Int(self.unknowns as i64)),
            ("nnz_a".into(), Json::Int(self.nnz_a as i64)),
            ("ordering_ms".into(), Json::Num(self.ordering_ms)),
            ("natural_factor_ms".into(), Json::Num(self.natural_ms)),
            ("ordered_factor_ms".into(), Json::Num(self.ordered_ms)),
            ("ordered_refactor_ms".into(), Json::Num(self.refactor_ms)),
            (
                "natural_fill_nnz".into(),
                Json::Int(self.natural_fill as i64),
            ),
            (
                "ordered_fill_nnz".into(),
                Json::Int(self.ordered_fill as i64),
            ),
            ("factor_speedup".into(), Json::Num(self.factor_speedup())),
            ("natural_residual".into(), Json::Num(self.natural_residual)),
            ("ordered_residual".into(), Json::Num(self.ordered_residual)),
        ];
        if let Some((secs, st)) = &self.tran {
            fields.push(("tran_s".into(), Json::Num(*secs)));
            fields.push(("tran_newton".into(), Json::Int(st.newton_iterations as i64)));
            fields.push(("tran_fill_nnz".into(), Json::Int(st.fill_nnz as i64)));
            fields.push((
                "tran_ordering_ms".into(),
                Json::Num(st.ordering_ns as f64 * 1e-6),
            ));
        }
        Json::Obj(fields)
    }
}

/// Times `f` adaptively: always once, two more runs when the first came
/// back fast enough that timer noise matters. Returns the minimum (s).
fn time_min<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    let mut best = t0.elapsed().as_secs_f64();
    if best < 0.2 {
        for _ in 0..2 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
    }
    (best, out)
}

/// Infinity-norm relative residual of `A x = b`.
fn rel_residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let r = a.mat_vec(x);
    let num = r
        .iter()
        .zip(b)
        .map(|(ri, bi)| (ri - bi).abs())
        .fold(0.0f64, f64::max);
    let den = b.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1e-30);
    num / den
}

fn measure_scaling(mut deck: GenDeck, with_transient: bool) -> ScalingPoint {
    let name = deck.name.clone();
    let probe = dc_jacobian(&mut deck.circuit, &OpOptions::default())
        .unwrap_or_else(|e| panic!("deck `{name}`: operating point failed: {e}"));
    let a = CscMatrix::from_triplets(probe.n, probe.n, &probe.entries);
    let b = a.mat_vec(&vec![1.0; probe.n]);

    let (ordering_s, q) = time_min(|| min_degree(&a));
    let (natural_s, natural_lu) = time_min(|| {
        SparseLu::factor_symbolic(&a).unwrap_or_else(|e| panic!("deck `{name}`: natural: {e}"))
    });
    let (ordered_s, mut ordered_lu) = time_min(|| {
        SparseLu::factor_symbolic_with_order(&a, &q)
            .unwrap_or_else(|e| panic!("deck `{name}`: ordered: {e}"))
    });
    let (refactor_s, ()) = time_min(|| {
        ordered_lu
            .refactor(&a)
            .unwrap_or_else(|e| panic!("deck `{name}`: refactor: {e:?}"))
    });
    let natural_residual = rel_residual(&a, &natural_lu.solve(&b).unwrap(), &b);
    let ordered_residual = rel_residual(&a, &ordered_lu.solve(&b).unwrap(), &b);

    let tran = with_transient.then(|| {
        let opts = TranOptions {
            dt_max: Some(deck.dt_max),
            ..Default::default()
        };
        let t0 = Instant::now();
        let (res, st) = stats::measure(|| transient(&mut deck.circuit, deck.tstop, &opts));
        res.unwrap_or_else(|e| panic!("deck `{name}`: transient failed: {e}"));
        (t0.elapsed().as_secs_f64(), st)
    });

    let point = ScalingPoint {
        name,
        unknowns: probe.n,
        nnz_a: a.nnz(),
        ordering_ms: ordering_s * 1e3,
        natural_ms: natural_s * 1e3,
        ordered_ms: ordered_s * 1e3,
        refactor_ms: refactor_s * 1e3,
        natural_fill: natural_lu.factor_nnz(),
        ordered_fill: ordered_lu.factor_nnz(),
        natural_residual,
        ordered_residual,
        tran,
    };
    println!(
        "{:<18} n={:<5} nnz(A)={:<6} natural {:>9.2} ms / fill {:<8} ordered {:>8.2} ms / \
         fill {:<7} ({:>6.2}x, order {:.2} ms, refactor {:.3} ms){}",
        point.name,
        point.unknowns,
        point.nnz_a,
        point.natural_ms,
        point.natural_fill,
        point.ordered_ms,
        point.ordered_fill,
        point.factor_speedup(),
        point.ordering_ms,
        point.refactor_ms,
        match &point.tran {
            Some((secs, _)) => format!("  tran {secs:.2} s"),
            None => String::new(),
        },
    );
    point
}

/// The generated-deck fleet for the scaling study.
fn scaling_decks(smoke: bool) -> Vec<(GenDeck, bool)> {
    let tech = Technology::n90();
    let sram_sizes: &[usize] = if smoke { &[4, 8] } else { &[4, 8, 16, 32, 64] };
    let mut decks: Vec<(GenDeck, bool)> = sram_sizes
        .iter()
        .map(|&s| (SramArrayGen::new(s, s).build(&tech), true))
        .collect();
    if smoke {
        decks.push((DominoTreeGen::new(32, 64).build(&tech), false));
    } else {
        decks.push((DominoTreeGen::new(32, 64).build(&tech), true));
        decks.push((DominoTreeGen::new(48, 64).build(&tech), true));
    }
    decks
}

/// The scaling smoke contract: ordering never worsens fill, both
/// factorizations solve accurately, and the transient records the new
/// attribution counters on decks above the ordering threshold.
fn scaling_violations(points: &[ScalingPoint]) -> Vec<String> {
    let mut violations = Vec::new();
    for p in points {
        if p.ordered_fill > p.natural_fill {
            violations.push(format!(
                "{}: ordered fill {} exceeds natural fill {}",
                p.name, p.ordered_fill, p.natural_fill
            ));
        }
        for (side, r) in [
            ("natural", p.natural_residual),
            ("ordered", p.ordered_residual),
        ] {
            // NaN must trip the gate too, hence the explicit finite check.
            if !r.is_finite() || r >= 1e-8 {
                violations.push(format!("{}: {side} solve residual {r:e}", p.name));
            }
        }
        if let Some((_, st)) = &p.tran {
            if p.unknowns >= 96 && (st.fill_nnz == 0 || st.ordering_ns == 0) {
                violations.push(format!(
                    "{}: transient above the ordering threshold recorded \
                     fill_nnz={} ordering_ns={}",
                    p.name, st.fill_nnz, st.ordering_ns
                ));
            }
        }
    }
    if !points.iter().any(|p| p.tran.is_some()) {
        violations.push("no scaling deck ran a transient".into());
    }
    violations
}

fn run_scaling(smoke: bool, out: &str) -> ExitCode {
    let decks = scaling_decks(smoke);
    println!(
        "perfbase --scaling: {} generated decks{}",
        decks.len(),
        if smoke { " (smoke subset)" } else { "" }
    );
    let points: Vec<ScalingPoint> = decks
        .into_iter()
        .map(|(deck, with_tran)| measure_scaling(deck, with_tran))
        .collect();

    if smoke {
        let violations = scaling_violations(&points);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("perfbase scaling smoke violation: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("perfbase scaling smoke OK");
        return ExitCode::SUCCESS;
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("perfbase".into())),
        ("version".into(), Json::Int(3)),
        ("mode".into(), Json::Str("scaling".into())),
        (
            "points".into(),
            Json::Arr(points.iter().map(ScalingPoint::to_json).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(out, doc.render() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("scaling curve written to {out}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = Cli::new("perfbase", "sparse fast-path benchmark baseline")
        .value("--iters", "timing iterations per workload [default: 5]")
        .value("--out", "output JSON path [default: BENCH_9.json]")
        .switch("--smoke", "reduced CI smoke variant")
        .switch("--scaling", "generated-deck ordering/fill scaling sweep")
        .parse_or_exit();
    let mut iters: usize = args.num("--iters", 5);
    let smoke = args.has("--smoke");
    if args.has("--scaling") {
        let out = args.get("--out").unwrap_or("BENCH_10.json").to_string();
        return run_scaling(smoke, &out);
    }
    let out = args.get("--out").unwrap_or("BENCH_9.json").to_string();
    if smoke {
        iters = iters.min(2);
    }

    let mut workloads = verify_deck_workloads();
    // The domino fan-in sweep: the paper's workhorse circuit at growing
    // PDN width. The fan-in-16 / fan-out-8 point crosses the sparse
    // threshold; fan-in 24 pushes deeper into the regime where frozen
    // linear algebra makes the per-iteration solve cheap and device
    // evaluation dominates — the deck that isolates the batched-eval win.
    for fan_in in [4usize, 8, 12, 16, 24] {
        workloads.push(domino_workload(fan_in, 8));
    }
    if smoke {
        // Keep only a representative subset: one linear deck (bypass),
        // one wide deck (sparse), and the headline domino point.
        workloads.retain(|w| {
            w.name == "verify:rc-ladder-pulse"
                || w.name == "verify:wide-rc-ladder"
                || w.name == "domino:or16-fo8"
        });
    }

    println!(
        "perfbase: {} workloads, {iters} timed iterations each (plus warm-up)",
        workloads.len()
    );
    let results: Vec<Measurement> = workloads.iter().map(|w| measure(w, iters)).collect();

    if smoke {
        let mut violations = smoke_violations(&results);
        // Batched and scalar device evaluation must stay bitwise
        // identical on the differential fleet (cheap: snapshot decks).
        for deck in diff::decks() {
            if let Err(msg) = diff::batched_vs_scalar(&deck) {
                violations.push(format!("batched-vs-scalar differential: {msg}"));
            }
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("perfbase smoke violation: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("perfbase smoke OK");
        return ExitCode::SUCCESS;
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("perfbase".into())),
        ("version".into(), Json::Int(3)),
        ("iters".into(), Json::Int(iters as i64)),
        (
            "decks".into(),
            Json::Arr(results.iter().map(Measurement::to_json).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&out, doc.render() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("baseline written to {out}");
    ExitCode::SUCCESS
}
