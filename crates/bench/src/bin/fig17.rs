//! Regenerates Figure 17: sleep-transistor R_ON / I_OFF vs area, plus the
//! gated-block companion study.

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::sleep::{fig17, gated_block_study, render_fig17};

fn main() {
    Cli::new(
        "fig17",
        "regenerates Figure 17 (sleep-transistor R_ON / I_OFF vs area)",
    )
    .parse_or_exit();
    let tech = Technology::n90();
    println!("Figure 17 — sleep transistor R_on and I_off vs normalized area\n");
    println!("{}", render_fig17(&fig17(&tech)));
    println!("Companion: power-gated inverter chain (coarse-grain footer)\n");
    match gated_block_study(&tech) {
        Ok(table) => println!("{table}"),
        Err(e) => {
            eprintln!("gated-block study failed: {e}");
            std::process::exit(1);
        }
    }
}
