//! `soak` — seeded fault-injection soak of the solver + harness stack.
//!
//! ```sh
//! cargo run --release -p nemscmos-bench --bin soak -- [--plans N] [--seed S]
//! ```
//!
//! Runs a fixed portfolio of small, self-contained op and transient
//! jobs once clean (the baseline), then `N` more times with a seeded
//! subset of jobs running under injected faults (NaN residuals, forced
//! singular pivots, Jacobian corruption, timestep-rejection storms).
//! The degradation contract is asserted on every run:
//!
//! - **no panics** — a fault may fail a job, never abort the batch;
//! - **no silently-wrong numbers** — a faulted job either recovers to
//!   (approximately) the baseline answer or fails with a *typed*
//!   diagnostic that the failure taxonomy can classify;
//! - **no collateral damage** — jobs without an injected fault remain
//!   bitwise identical to the clean baseline.
//!
//! Exits non-zero (after printing every violation) if any assertion
//! fails; prints `soak OK` plus the aggregated failure taxonomy on
//! success. `ci.sh` runs a small-`N` fixed-seed instance of this binary.
//!
//! `--resume-smoke` instead runs the kill/resume drill: a journaled
//! batch under a tight per-job deadline with deliberately wedged jobs
//! (the stand-in for a batch killed mid-flight), then a resume of the
//! same run id that must recover every journaled job without
//! re-execution and finish bitwise identical to an uninterrupted
//! baseline. Prints `resume smoke OK` on success.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use nemscmos_bench::cli::Cli;
use nemscmos_harness::{
    Cache, FailureKind, HarnessError, JobOutcome, JobSpec, RetryPolicy, Runner, Supervision,
};
use nemscmos_numeric::rng::{Rand64, SplitMix64};
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::faults::{Disarm, FaultKind, FaultPlan};
use nemscmos_spice::guard::{self, GuardConfig};
use nemscmos_spice::waveform::Waveform;

/// One soak job: a named, self-contained simulation returning a few
/// probe values. `tran` selects the fault kinds that can fire in it
/// (timestep storms need a transient).
struct SoakJob {
    name: &'static str,
    tran: bool,
    body: fn() -> Result<Vec<f64>, HarnessError>,
}

fn op_probe(ckt: &mut Circuit, probes: &[&str]) -> Result<Vec<f64>, HarnessError> {
    let res = op(ckt).map_err(HarnessError::from)?;
    Ok(probes
        .iter()
        .map(|n| res.voltage(ckt.find_node(n).expect("probe node exists")))
        .collect())
}

fn tran_probe(ckt: &mut Circuit, tstop: f64, probes: &[&str]) -> Result<Vec<f64>, HarnessError> {
    let res = transient(ckt, tstop, &TranOptions::default()).map_err(HarnessError::from)?;
    Ok(probes
        .iter()
        .map(|n| {
            res.voltage(ckt.find_node(n).expect("probe node exists"))
                .last_value()
        })
        .collect())
}

fn div_chain() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let c = ckt.node("c");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(3.0));
    ckt.resistor(a, b, 1e3);
    ckt.resistor(b, c, 2e3);
    ckt.resistor(c, Circuit::GROUND, 3e3);
    op_probe(&mut ckt, &["b", "c"])
}

fn ladder_r5() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    ckt.vsource(prev, Circuit::GROUND, Waveform::dc(2.0));
    for i in 1..=5 {
        let n = ckt.node(&format!("n{i}"));
        ckt.resistor(prev, n, 1e3 * i as f64);
        ckt.resistor(n, Circuit::GROUND, 10e3);
        prev = n;
    }
    op_probe(&mut ckt, &["n1", "n3", "n5"])
}

fn series_src() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let out = ckt.node("out");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
    ckt.vsource(b, a, Waveform::dc(1.5));
    ckt.resistor(b, out, 1e3);
    ckt.resistor(out, Circuit::GROUND, 4e3);
    op_probe(&mut ckt, &["out"])
}

fn vccs_amp() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::dc(0.1));
    // gm = 1 mS into 10 kΩ: out = -gm * R * vin = -1.0 V.
    ckt.vccs(out, Circuit::GROUND, vin, Circuit::GROUND, 1e-3);
    ckt.resistor(out, Circuit::GROUND, 10e3);
    op_probe(&mut ckt, &["out"])
}

fn vcvs_buffer() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let out = ckt.node("out");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
    ckt.resistor(a, b, 1e3);
    ckt.resistor(b, Circuit::GROUND, 1e3);
    ckt.vcvs(out, Circuit::GROUND, b, Circuit::GROUND, 2.0);
    ckt.resistor(out, Circuit::GROUND, 5e3);
    op_probe(&mut ckt, &["b", "out"])
}

fn high_ratio() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
    ckt.resistor(a, b, 1.0);
    ckt.resistor(b, Circuit::GROUND, 1e6);
    op_probe(&mut ckt, &["b"])
}

fn isource_r() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let out = ckt.node("out");
    ckt.isource(Circuit::GROUND, out, Waveform::dc(1e-3));
    ckt.resistor(out, Circuit::GROUND, 1e3);
    ckt.resistor(out, Circuit::GROUND, 1e3);
    op_probe(&mut ckt, &["out"])
}

fn rc_step() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, out, 1e3);
    ckt.capacitor(out, Circuit::GROUND, 1e-9);
    tran_probe(&mut ckt, 10e-6, &["out"])
}

fn rc_cascade() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let m = ckt.node("mid");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, m, 1e3);
    ckt.capacitor(m, Circuit::GROUND, 1e-10);
    ckt.resistor(m, out, 1e3);
    ckt.capacitor(out, Circuit::GROUND, 1e-10);
    tran_probe(&mut ckt, 5e-6, &["mid", "out"])
}

fn rl_step() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, out, 1e3);
    // τ = L/R = 1 µs; after 5 τ the inductor is nearly a short.
    ckt.inductor(out, Circuit::GROUND, 1e-3);
    tran_probe(&mut ckt, 5e-6, &["out"])
}

fn rlc_series() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let m = ckt.node("mid");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, m, 100.0);
    ckt.inductor(m, out, 1e-6);
    ckt.capacitor(out, Circuit::GROUND, 1e-9);
    tran_probe(&mut ckt, 3e-6, &["out"])
}

fn divider_cap() -> Result<Vec<f64>, HarnessError> {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::step(0.0, 2.0, 0.0, 1e-12));
    ckt.resistor(a, b, 1e3);
    ckt.resistor(b, Circuit::GROUND, 3e3);
    ckt.capacitor(b, Circuit::GROUND, 1e-10);
    tran_probe(&mut ckt, 5e-6, &["b"])
}

fn portfolio() -> Vec<SoakJob> {
    vec![
        SoakJob {
            name: "div-chain",
            tran: false,
            body: div_chain,
        },
        SoakJob {
            name: "ladder-r5",
            tran: false,
            body: ladder_r5,
        },
        SoakJob {
            name: "series-src",
            tran: false,
            body: series_src,
        },
        SoakJob {
            name: "vccs-amp",
            tran: false,
            body: vccs_amp,
        },
        SoakJob {
            name: "vcvs-buffer",
            tran: false,
            body: vcvs_buffer,
        },
        SoakJob {
            name: "high-ratio",
            tran: false,
            body: high_ratio,
        },
        SoakJob {
            name: "isource-r",
            tran: false,
            body: isource_r,
        },
        SoakJob {
            name: "rc-step",
            tran: true,
            body: rc_step,
        },
        SoakJob {
            name: "rc-cascade",
            tran: true,
            body: rc_cascade,
        },
        SoakJob {
            name: "rl-step",
            tran: true,
            body: rl_step,
        },
        SoakJob {
            name: "rlc-series",
            tran: true,
            body: rlc_series,
        },
        SoakJob {
            name: "divider-cap",
            tran: true,
            body: divider_cap,
        },
    ]
}

/// Draws a fault plan for one job: the kind from the job's legal set,
/// the disarm from a mix of rung-keyed rescues and `Never` (which must
/// surface a typed diagnostic).
fn draw_plan(rng: &mut SplitMix64, tran: bool) -> FaultPlan {
    let kind = match rng.next_u64() % if tran { 4 } else { 3 } {
        0 => FaultKind::NanResidual,
        1 => FaultKind::SingularPivot,
        2 => FaultKind::JacobianPerturb { relative: 1e3 },
        _ => FaultKind::TimestepStorm,
    };
    let disarm = if kind == FaultKind::TimestepStorm {
        match rng.next_u64() % 3 {
            0 => Disarm::WhenBackwardEuler,
            1 => Disarm::AfterTriggers(2),
            _ => Disarm::Never,
        }
    } else {
        match rng.next_u64() % 4 {
            0 => Disarm::WhenGminFloor,
            1 => Disarm::WhenSourceStepping,
            2 => Disarm::WhenBackwardEuler,
            _ => Disarm::Never,
        }
    };
    FaultPlan::immediate(kind, disarm, rng.next_u64())
}

/// Relative + absolute closeness for recovered/ridden-out values: a
/// rescue rung's g_min floor or backward-Euler damping shifts answers
/// slightly, but never materially.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-3 + 0.02 * b.abs()
}

const TYPED_KINDS: [FailureKind; 4] = [
    FailureKind::NonConvergence,
    FailureKind::Singular,
    FailureKind::NonFinite,
    FailureKind::Kcl,
];

/// Burns solver work until the supervisor stops the job — the stand-in
/// for a job that a batch kill interrupts mid-solve.
fn wedge_until_interrupted() -> Result<Vec<f64>, HarnessError> {
    loop {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-9);
        match transient(&mut ckt, 1e-2, &TranOptions::default()) {
            Err(e) if e.is_interrupt() => return Err(e.into()),
            _ => continue,
        }
    }
}

/// The kill/resume drill behind `--resume-smoke`.
fn resume_smoke() -> ExitCode {
    let jobs_def = portfolio();
    let specs: Vec<JobSpec> = jobs_def
        .iter()
        .map(|j| JobSpec::new(j.name, format!("soak v1 {}", j.name)))
        .collect();
    let run_body = |i: usize| {
        let body = jobs_def[i].body;
        guard::with(GuardConfig::kcl(1e-6), body)
    };
    let wedged = |i: usize| i % 4 == 2;
    let wedged_count = (0..specs.len()).filter(|&i| wedged(i)).count();
    let threads = nemscmos_harness::default_threads();
    let dir = std::env::temp_dir().join(format!("nemscmos-resume-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run_id = "resume-smoke";
    let mut violations: Vec<String> = Vec::new();

    println!(
        "== kill/resume smoke: {} jobs, {wedged_count} wedged ==",
        specs.len()
    );

    // Uninterrupted baseline — what the resumed run must reproduce.
    let (baseline, _) = Runner::with_config(threads, None, RetryPolicy::default()).run_collect(
        "resume-smoke baseline",
        &specs,
        |i, _| run_body(i),
    );
    let baseline: Vec<Vec<f64>> = match baseline.into_iter().collect() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: clean baseline did not complete: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Pass 1: journaled and supervised. Wedged jobs spin until the
    // per-job deadline stops them with a typed error; everything that
    // finishes is fsync'd to the journal before the batch moves on.
    let executed = AtomicUsize::new(0);
    let runner = Runner::with_config(threads, Some(Cache::at(&dir)), RetryPolicy::default())
        .with_supervision(Supervision::deadline(Duration::from_millis(150)))
        .with_journal(run_id)
        .expect("journal opens");
    let (_, report) = runner.run_collect("resume-smoke pass 1", &specs, |i, _| {
        executed.fetch_add(1, Ordering::SeqCst);
        if wedged(i) {
            return wedge_until_interrupted();
        }
        run_body(i)
    });
    print!("{}", report.render());
    if report.panicked_jobs() > 0 {
        violations.push("pass 1: a job panicked — kills must be cooperative".into());
    }
    if report.deadline_exceeded_jobs() != wedged_count {
        violations.push(format!(
            "pass 1: expected {wedged_count} deadline-exceeded jobs, saw {}",
            report.deadline_exceeded_jobs()
        ));
    }
    for (i, job) in report.jobs.iter().enumerate() {
        let want_fail = wedged(i);
        if want_fail != job.outcome.is_failure() {
            violations.push(format!(
                "pass 1/{}: expected {} but job {}",
                job.name,
                if want_fail {
                    "a deadline abort"
                } else {
                    "success"
                },
                job.outcome.label(),
            ));
        }
    }

    // Pass 2: resume the same run id. Journaled jobs come back without
    // re-execution; only the wedged ones run — and the combined batch
    // must be bitwise identical to the uninterrupted baseline.
    let executed2 = AtomicUsize::new(0);
    let runner = Runner::with_config(threads, Some(Cache::at(&dir)), RetryPolicy::default())
        .with_journal(run_id)
        .expect("journal reopens");
    let recovered = runner.journal().map_or(0, |j| j.recovered());
    let (results, report) = runner.run_collect("resume-smoke pass 2", &specs, |i, _| {
        executed2.fetch_add(1, Ordering::SeqCst);
        run_body(i)
    });
    print!("{}", report.render());
    if recovered != specs.len() - wedged_count {
        violations.push(format!(
            "pass 2: journal recovered {recovered} jobs, expected {}",
            specs.len() - wedged_count
        ));
    }
    if executed2.load(Ordering::SeqCst) != wedged_count {
        violations.push(format!(
            "pass 2: {} jobs re-executed, expected only the {wedged_count} unfinished ones",
            executed2.load(Ordering::SeqCst)
        ));
    }
    if report.resumed_jobs() != specs.len() - wedged_count {
        violations.push(format!(
            "pass 2: {} jobs marked resumed, expected {}",
            report.resumed_jobs(),
            specs.len() - wedged_count
        ));
    }
    if report.failed_jobs() > 0 {
        violations.push("pass 2: the resumed batch must complete cleanly".into());
    }
    match results.into_iter().collect::<Result<Vec<Vec<f64>>, _>>() {
        Ok(resumed) => {
            for (i, (a, b)) in baseline.iter().zip(&resumed).enumerate() {
                let same =
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                if !same {
                    violations.push(format!(
                        "pass 2/{}: resumed result diverged from baseline ({b:?} vs {a:?})",
                        jobs_def[i].name
                    ));
                }
            }
        }
        Err(e) => violations.push(format!("pass 2: a job failed: {e}")),
    }

    let _ = std::fs::remove_dir_all(&dir);
    if violations.is_empty() {
        println!("resume smoke OK");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        eprintln!("resume smoke FAILED: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = Cli::new(
        "soak",
        "seeded fault-injection soak of the solver + harness stack",
    )
    .value("--plans", "fault plans to draw [default: 8]")
    .value("--seed", "master seed [default: 0xD1CE]")
    .switch("--resume-smoke", "run the kill/resume drill instead")
    .parse_or_exit();
    if args.has("--resume-smoke") {
        return resume_smoke();
    }
    let plans: usize = args.num("--plans", 8);
    let seed: u64 = args.num("--seed", 0xD1CE);

    let jobs_def = portfolio();
    let specs: Vec<JobSpec> = jobs_def
        .iter()
        .map(|j| JobSpec::new(j.name, format!("soak v1 {}", j.name)))
        .collect();
    // Every job body runs with the KCL audit armed: a fault that fools
    // the Newton ‖Δx‖ test must still be caught post-solve.
    let run_body = |i: usize| {
        let body = jobs_def[i].body;
        guard::with(GuardConfig::kcl(1e-6), body)
    };

    println!("== fault-injection soak: {plans} plans, seed {seed:#x} ==");
    let clean_runner = Runner::with_config(
        nemscmos_harness::default_threads(),
        None,
        RetryPolicy::default(),
    );
    let (baseline, base_report) =
        clean_runner.run_collect("soak baseline", &specs, |i, _| run_body(i));
    let baseline: Vec<Vec<f64>> = match baseline.into_iter().collect() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: clean baseline did not complete: {e}");
            return ExitCode::FAILURE;
        }
    };
    if base_report.failed_jobs() > 0 {
        eprintln!("FAIL: clean baseline recorded failures");
        return ExitCode::FAILURE;
    }

    let mut violations: Vec<String> = Vec::new();
    let mut taxonomy: Vec<(FailureKind, usize)> = Vec::new();
    let mut rescued = 0usize;
    let mut surfaced = 0usize;

    for p in 0..plans {
        let mut rng = SplitMix64::new(seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut plan_for: Vec<Option<FaultPlan>> = jobs_def
            .iter()
            .map(|j| {
                rng.next_u64()
                    .is_multiple_of(3)
                    .then(|| draw_plan(&mut rng, j.tran))
            })
            .collect();
        // Guarantee at least one never-disarming fault per plan so the
        // taxonomy is exercised on every soak run.
        let forced = p % jobs_def.len();
        plan_for[forced] = Some(FaultPlan::immediate(
            if jobs_def[forced].tran && rng.next_u64().is_multiple_of(2) {
                FaultKind::TimestepStorm
            } else {
                FaultKind::NanResidual
            },
            Disarm::Never,
            rng.next_u64(),
        ));

        let plan_lookup = plan_for.clone();
        let runner = Runner::with_config(
            nemscmos_harness::default_threads(),
            None,
            RetryPolicy::default(),
        )
        .with_fault_source(Box::new(move |i, _| plan_lookup[i]));
        let (results, report) =
            runner.run_collect(&format!("soak plan {p}"), &specs, |i, _| run_body(i));

        if report.panicked_jobs() > 0 {
            violations.push(format!("plan {p}: a job panicked — batch must never abort"));
        }
        for (i, (result, record)) in results.iter().zip(report.jobs.iter()).enumerate() {
            let name = jobs_def[i].name;
            match (&plan_for[i], result) {
                (None, Ok(values)) => {
                    let same = values.len() == baseline[i].len()
                        && values
                            .iter()
                            .zip(&baseline[i])
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                    if !same {
                        violations.push(format!(
                            "plan {p}/{name}: unfaulted job diverged from baseline \
                             ({values:?} vs {:?})",
                            baseline[i]
                        ));
                    }
                }
                (None, Err(e)) => {
                    violations.push(format!("plan {p}/{name}: unfaulted job failed: {e}"));
                }
                (Some(_), Ok(values)) => {
                    if matches!(record.outcome, JobOutcome::Recovered(_)) {
                        rescued += 1;
                    }
                    let ok = values.len() == baseline[i].len()
                        && values.iter().zip(&baseline[i]).all(|(a, b)| close(*a, *b));
                    if !ok {
                        violations.push(format!(
                            "plan {p}/{name}: faulted job returned a wrong number \
                             ({values:?} vs {:?})",
                            baseline[i]
                        ));
                    }
                }
                (Some(plan), Err(e)) => {
                    let kind = e.kind();
                    if TYPED_KINDS.contains(&kind) {
                        surfaced += 1;
                        match taxonomy.iter_mut().find(|(k, _)| *k == kind) {
                            Some((_, n)) => *n += 1,
                            None => taxonomy.push((kind, 1)),
                        }
                    } else {
                        violations.push(format!(
                            "plan {p}/{name}: fault {:?} surfaced untyped ({kind:?}): {e}",
                            plan.kind
                        ));
                    }
                }
            }
        }
        if p + 1 == plans {
            print!("{}", report.render());
        }
    }

    taxonomy.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let classes: Vec<String> = taxonomy
        .iter()
        .map(|(k, n)| format!("{} {n}", k.label()))
        .collect();
    println!(
        "soak totals: {} plans x {} jobs | {rescued} rescued by the ladder | \
         {surfaced} surfaced typed [{}]",
        plans,
        jobs_def.len(),
        classes.join(" | ")
    );

    if taxonomy.is_empty() {
        violations.push("no typed failures observed — taxonomy must be non-empty".into());
    }
    if violations.is_empty() {
        println!("soak OK");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        eprintln!("soak FAILED: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
