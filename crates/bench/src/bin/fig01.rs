//! Regenerates Figure 1: the ITRS leakage-scaling trend.

use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::device_tables::render_fig01;

fn main() {
    Cli::new("fig01", "regenerates Figure 1 (ITRS leakage-scaling trend)").parse_or_exit();
    println!("Figure 1 — technology scaling and subthreshold leakage\n");
    println!("{}", render_fig01());
}
