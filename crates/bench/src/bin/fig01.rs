//! Regenerates Figure 1: the ITRS leakage-scaling trend.

use nemscmos_bench::experiments::device_tables::render_fig01;

fn main() {
    println!("Figure 1 — technology scaling and subthreshold leakage\n");
    println!("{}", render_fig01());
}
