//! Statistical variation studies: SRAM SNM Monte Carlo and a five-corner
//! sweep of the headline circuits, with harness telemetry.

use nemscmos::tech::Technology;
use nemscmos_bench::cli::Cli;
use nemscmos_bench::experiments::variation::{render_corner_sweep, render_sram_mc};
use nemscmos_harness::drain_reports;

fn main() {
    Cli::new("variation", "SRAM SNM Monte Carlo and five-corner sweep").parse_or_exit();
    let tech = Technology::n90();
    println!("SRAM read-SNM Monte Carlo (sigma_Vth = 30 mV/device, 64 trials)\n");
    match render_sram_mc(&tech, 0.03, 64) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("SRAM Monte Carlo failed: {e}");
            std::process::exit(1);
        }
    }
    println!("Five-corner sweep\n");
    match render_corner_sweep(&tech) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("corner sweep failed: {e}");
            std::process::exit(1);
        }
    }
    let reports = drain_reports();
    for report in &reports {
        println!("{}", report.render());
    }
    println!("{}", nemscmos_harness::supervision_totals(&reports));
}
