//! Shared CLI conventions for every `bin/*` target.
//!
//! All bench binaries speak the same dialect: `--help`/`-h` prints a
//! usage block and exits 0, an unknown or malformed flag prints the
//! usage to stderr and exits 2 (so CI scripts and shell pipelines see
//! typos as failures, never as silently-defaulted runs), and declared
//! flags are collected without any external argument-parsing crate.
//!
//! ```no_run
//! use nemscmos_bench::cli::Cli;
//! let args = Cli::new("soak", "seeded fault-injection soak")
//!     .value("--plans", "number of fault plans [default: 8]")
//!     .value("--seed", "master seed")
//!     .switch("--resume-smoke", "run the kill/resume drill instead")
//!     .parse_or_exit();
//! let plans: usize = args.num("--plans", 8);
//! ```

use std::process::exit;

/// Declarative description of one binary's flags.
#[derive(Debug, Clone)]
pub struct Cli {
    name: &'static str,
    about: &'static str,
    values: Vec<(&'static str, &'static str)>,
    switches: Vec<(&'static str, &'static str)>,
    positionals: Option<(&'static str, usize)>,
}

/// Parsed arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    values: Vec<(String, String)>,
    switches: Vec<String>,
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
}

/// Successful parse outcomes (internal; `parse_or_exit` resolves both).
#[derive(Debug, PartialEq, Eq)]
enum Parsed {
    Args(Args),
    Help,
}

impl Args {
    /// True when `switch` was passed.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// The raw value of `flag`, if passed.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// The parsed value of `flag`, or `default` when absent. A value
    /// that does not parse exits 2 — a typo must never silently run
    /// with the default.
    pub fn num<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.get(flag) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("{flag} {raw:?} is not a valid value");
                exit(2);
            }),
        }
    }
}

impl Cli {
    /// Starts a declaration for binary `name`.
    pub fn new(name: &'static str, about: &'static str) -> Cli {
        Cli {
            name,
            about,
            values: Vec::new(),
            switches: Vec::new(),
            positionals: None,
        }
    }

    /// Declares a flag that takes a value (`--flag VALUE`).
    #[must_use]
    pub fn value(mut self, flag: &'static str, help: &'static str) -> Cli {
        self.values.push((flag, help));
        self
    }

    /// Declares a boolean switch.
    #[must_use]
    pub fn switch(mut self, flag: &'static str, help: &'static str) -> Cli {
        self.switches.push((flag, help));
        self
    }

    /// Allows up to `max` positional (non-flag) arguments.
    #[must_use]
    pub fn positionals(mut self, help: &'static str, max: usize) -> Cli {
        self.positionals = Some((help, max));
        self
    }

    /// The rendered usage block.
    pub fn usage(&self) -> String {
        let mut out = format!(
            "{} — {}\n\nusage: {} [options]",
            self.name, self.about, self.name
        );
        if let Some((help, _)) = self.positionals {
            out.push_str(&format!(" {help}"));
        }
        out.push_str("\n\noptions:\n");
        for (flag, help) in &self.values {
            out.push_str(&format!("  {flag} VALUE\n      {help}\n"));
        }
        for (flag, help) in &self.switches {
            out.push_str(&format!("  {flag}\n      {help}\n"));
        }
        out.push_str("  --help\n      print this help\n");
        out
    }

    fn try_parse(&self, raw: impl Iterator<Item = String>) -> Result<Parsed, String> {
        let mut args = Args::default();
        let mut raw = raw.peekable();
        while let Some(tok) = raw.next() {
            if tok == "--help" || tok == "-h" {
                return Ok(Parsed::Help);
            }
            if self.values.iter().any(|(f, _)| *f == tok) {
                let value = raw.next().ok_or_else(|| format!("{tok} needs a value"))?;
                args.values.push((tok, value));
            } else if self.switches.iter().any(|(f, _)| *f == tok) {
                args.switches.push(tok);
            } else if tok.starts_with('-') {
                return Err(format!("unknown flag {tok:?}"));
            } else {
                let max = self.positionals.map_or(0, |(_, max)| max);
                if args.positional.len() >= max {
                    return Err(if max == 0 {
                        format!("unexpected argument {tok:?}")
                    } else {
                        format!("too many arguments at {tok:?} (at most {max})")
                    });
                }
                args.positional.push(tok);
            }
        }
        Ok(Parsed::Args(args))
    }

    /// Parses the process arguments. `--help` prints usage and exits 0;
    /// anything undeclared prints usage to stderr and exits 2.
    pub fn parse_or_exit(&self) -> Args {
        match self.try_parse(std::env::args().skip(1)) {
            Ok(Parsed::Args(args)) => args,
            Ok(Parsed::Help) => {
                println!("{}", self.usage());
                exit(0);
            }
            Err(e) => {
                eprintln!("{}: {e}\n\n{}", self.name, self.usage());
                exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs<'a>(raw: &'a [&'a str]) -> impl Iterator<Item = String> + 'a {
        raw.iter().map(|s| (*s).to_string())
    }

    fn cli() -> Cli {
        Cli::new("demo", "test binary")
            .value("--iters", "iteration count")
            .switch("--smoke", "reduced run")
            .positionals("[PATH]", 1)
    }

    #[test]
    fn declared_flags_parse() {
        let parsed = cli()
            .try_parse(strs(&["--iters", "7", "--smoke", "a.cir"]))
            .unwrap();
        let Parsed::Args(args) = parsed else {
            panic!("not help");
        };
        assert_eq!(args.num("--iters", 0usize), 7);
        assert!(args.has("--smoke"));
        assert_eq!(args.positional, vec!["a.cir"]);
        // Absent flags fall back.
        assert_eq!(args.num("--missing", 42u64), 42);
        assert!(!args.has("--other"));
    }

    #[test]
    fn help_wins_anywhere() {
        assert_eq!(
            cli().try_parse(strs(&["--iters", "7", "--help"])).unwrap(),
            Parsed::Help
        );
        assert_eq!(cli().try_parse(strs(&["-h"])).unwrap(), Parsed::Help);
    }

    #[test]
    fn unknown_flags_and_arity_are_errors() {
        assert!(cli().try_parse(strs(&["--warp"])).is_err());
        assert!(cli().try_parse(strs(&["--iters"])).is_err());
        assert!(cli().try_parse(strs(&["a", "b"])).is_err());
        // A binary with no positionals declared rejects bare words too.
        assert!(Cli::new("x", "y").try_parse(strs(&["stray"])).is_err());
    }

    #[test]
    fn usage_lists_every_flag() {
        let usage = cli().usage();
        for needle in ["--iters", "--smoke", "--help", "[PATH]", "demo"] {
            assert!(usage.contains(needle), "usage missing {needle}: {usage}");
        }
    }
}
