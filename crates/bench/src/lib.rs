//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Dadgour & Banerjee, DAC 2007).
//!
//! Each experiment in [`experiments`] returns structured data *and* a
//! rendered text table matching the rows/series the paper reports. The
//! `bin/` targets print them (`cargo run -p nemscmos-bench --bin fig10`),
//! `bin/all` regenerates everything, and the benches in `benches/`
//! (plain binaries on the offline [`timing`] driver) time the
//! underlying simulation workloads.
//!
//! | Target   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table 1 — I_ON/I_OFF of the calibrated CMOS and NEMS devices |
//! | `fig01`  | Figure 1 — ITRS scaling trend of subthreshold leakage |
//! | `fig02`  | Figure 2 — subthreshold-swing survey |
//! | `fig09`  | Figure 9 — delay vs noise margin under process variation |
//! | `fig10`  | Figure 10 — 8-input OR power/delay vs fan-out |
//! | `fig11`  | Figure 11 — OR power/delay vs fan-in (crossover ≥ 12) |
//! | `fig12`  | Figure 12 — power-delay product vs activity factor |
//! | `fig14`  | Figure 14 — SRAM butterfly curves and SNM |
//! | `fig15`  | Figure 15 — SRAM read latency and standby leakage |
//! | `fig17`  | Figure 17 — sleep-transistor R_ON / I_OFF vs area |

pub mod cli;
pub mod experiments;
pub mod timing;
