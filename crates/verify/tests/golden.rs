//! Golden-snapshot gate as a test: every committed snapshot must match
//! the current engine bit-for-bit. Set `NEMSCMOS_BLESS=1` (or run
//! `cargo run -p nemscmos-verify --bin golden -- --bless`) to refresh
//! them after an intentional solver change.

use nemscmos_verify::golden;

#[test]
fn committed_snapshots_match_current_engine() {
    if std::env::var("NEMSCMOS_BLESS").is_ok_and(|v| v == "1") {
        let written = golden::bless().unwrap();
        assert!(!written.is_empty());
        return;
    }
    let drifted = golden::check();
    assert!(
        drifted.is_empty(),
        "golden snapshots drifted: {drifted:?} — re-bless with \
         `cargo run -p nemscmos-verify --bin golden -- --bless` if intentional"
    );
}

#[test]
fn every_deck_has_a_snapshot_slot() {
    // The artifact set must cover the whole differential fleet.
    let names: Vec<&str> = golden::artifacts().iter().map(|a| a.name).collect();
    for deck in nemscmos_verify::diff::decks() {
        assert!(names.contains(&deck.name), "deck `{}` missing", deck.name);
    }
}
