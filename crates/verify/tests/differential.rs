//! Differential solver testing over the full deck fleet: integration
//! methods agree within order bounds, matrix backends agree to rounding,
//! and harness parallelism is bitwise-invisible.

use nemscmos_verify::diff;

#[test]
fn trapezoidal_and_backward_euler_agree_on_every_deck() {
    for deck in diff::decks() {
        diff::trap_vs_be(&deck).unwrap_or_else(|d| panic!("deck `{}`: {d}", deck.name));
    }
}

#[test]
fn dense_and_sparse_backends_agree_on_every_deck() {
    for deck in diff::decks() {
        diff::dense_vs_sparse(&deck).unwrap_or_else(|d| panic!("deck `{}`: {d}", deck.name));
    }
}

#[test]
fn ordered_and_natural_sparse_factorization_agree_on_every_deck() {
    for deck in diff::decks() {
        diff::ordered_vs_natural(&deck).unwrap_or_else(|d| panic!("deck `{}`: {d}", deck.name));
    }
}

#[test]
fn fast_and_legacy_linear_algebra_are_bitwise_identical_on_every_deck() {
    for deck in diff::decks() {
        diff::fast_vs_slow(&deck).unwrap_or_else(|msg| panic!("{msg}"));
    }
}

#[test]
fn batched_and_scalar_device_eval_are_bitwise_identical_on_every_deck() {
    for deck in diff::decks() {
        diff::batched_vs_scalar(&deck).unwrap_or_else(|msg| panic!("{msg}"));
    }
}

#[test]
fn batched_and_scalar_device_eval_agree_under_seeded_fault_plans() {
    // Device-bearing decks only: the fault machinery also disables the
    // linear-circuit bypass, and the perturbation stream must line up
    // iteration-for-iteration between the two eval paths.
    for deck in diff::decks() {
        for seed in [7, 1913] {
            diff::batched_vs_scalar_faulted(&deck, seed).unwrap_or_else(|msg| panic!("{msg}"));
        }
    }
}

#[test]
fn harness_thread_count_is_bitwise_invisible() {
    diff::thread_identity(4).unwrap();
}

#[test]
fn harness_thread_identity_holds_at_higher_width() {
    diff::thread_identity(8).unwrap();
}
