//! Analytic-oracle conformance: the assembled engine against closed
//! forms, across element values spanning several decades, plus the
//! manufactured-solution checks. Property cases run on the vendored
//! `nemscmos_numeric::check` runner so failures shrink to a minimal
//! parameter set.

use nemscmos_devices::mosfet::MosModel;
use nemscmos_numeric::check::{check, Config};
use nemscmos_verify::{mms, oracle};

#[test]
fn rc_step_matches_closed_form() {
    check(
        "RC step matches closed form",
        &Config::with_cases(12),
        |d| {
            (
                d.f64_in(100.0, 100e3),
                d.f64_in(1e-12, 1e-9),
                d.f64_in(0.2, 5.0),
            )
        },
        |&(r, c, v)| oracle::check_rc_step(r, c, v).map_err(|d| d.to_string()),
    );
}

#[test]
fn rl_step_matches_closed_form() {
    check(
        "RL step matches closed form",
        &Config::with_cases(12),
        |d| {
            (
                d.f64_in(10.0, 10e3),
                d.f64_in(1e-9, 1e-6),
                d.f64_in(0.2, 5.0),
            )
        },
        |&(r, l, v)| oracle::check_rl_step(r, l, v).map_err(|d| d.to_string()),
    );
}

#[test]
fn rlc_underdamped_matches_closed_form() {
    // Q well above 1: visible ringing.
    oracle::check_rlc_step(20.0, 100e-9, 1e-12, 1.0).unwrap();
}

#[test]
fn rlc_overdamped_matches_closed_form() {
    // Q well below 1/2: two real poles.
    oracle::check_rlc_step(5e3, 100e-9, 1e-12, 1.0).unwrap();
}

#[test]
fn nmos_stage_dc_matches_load_line_bisection() {
    let model = MosModel::nmos_90nm();
    check(
        "NMOS stage DC matches load-line bisection",
        &Config::with_cases(24),
        |d| (d.f64_in(0.0, 1.2), d.f64_in(1e3, 200e3), d.f64_in(0.2, 8.0)),
        |&(vg, r, w)| oracle::check_nmos_stage_dc(&model, vg, 1.2, r, w).map_err(|d| d.to_string()),
    );
}

#[test]
fn nmos_diode_dc_matches_load_line_bisection() {
    let model = MosModel::nmos_90nm();
    check(
        "NMOS diode DC matches load-line bisection",
        &Config::with_cases(24),
        |d| (d.f64_in(1e3, 500e3), d.f64_in(0.2, 8.0)),
        |&(r, w)| oracle::check_nmos_diode_dc(&model, 1.2, r, w).map_err(|d| d.to_string()),
    );
}

#[test]
fn pmos_loaded_stage_also_solves() {
    // The DC oracle machinery is NMOS-specific; for PMOS coverage, check
    // the model is at least exercised by the differential inverter deck —
    // here just pin the polarity convention: a PMOS with source at V_dd
    // and grounded gate conducts.
    let p = MosModel::pmos_90nm();
    let (i, ..) = p.ids(0.0, 0.6, 1.2, 1.0);
    assert!(i.abs() > 1e-6, "PMOS should be on, |i| = {:.3e}", i.abs());
}

#[test]
fn manufactured_solutions_hold_across_sizes() {
    for n in [1, 4, 12, 40, 80] {
        mms::check_manufactured_ladder(n, 2e3, 1e-3, 8e-4)
            .unwrap_or_else(|d| panic!("ladder n={n}: {d}"));
    }
}

#[test]
fn manufactured_solution_survives_strong_nonlinearity() {
    check(
        "manufactured solution with random coefficients",
        &Config::with_cases(16),
        |d| {
            (
                d.usize_in(1, 30),
                d.f64_in(100.0, 50e3),
                d.f64_in(1e-4, 1e-2),
                d.f64_in(0.0, 5e-3),
            )
        },
        |&(n, r, g, a)| mms::check_manufactured_ladder(n, r, g, a).map_err(|d| d.to_string()),
    );
}
