//! Per-point waveform comparison with tolerance bands.
//!
//! Every oracle and differential check in this crate reduces to the same
//! question: do two samples agree within `abs + rel·|reference|`? When
//! they do not, the caller wants to know *where it first went wrong*,
//! not just that it did — so the failure type, [`Divergence`], carries
//! the node, the time, both values, and the band that was violated.

use std::fmt;

/// An absolute-plus-relative tolerance band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute term (units of the compared quantity).
    pub abs: f64,
    /// Relative term, scaled by the reference magnitude.
    pub rel: f64,
}

impl Tolerance {
    /// A band with both terms.
    pub fn new(abs: f64, rel: f64) -> Tolerance {
        Tolerance { abs, rel }
    }

    /// A purely absolute band.
    pub fn abs(abs: f64) -> Tolerance {
        Tolerance { abs, rel: 0.0 }
    }

    /// The allowed deviation around `reference`.
    pub fn band(&self, reference: f64) -> f64 {
        self.abs + self.rel * reference.abs()
    }

    /// Whether `value` lies within the band around `reference`.
    pub fn within(&self, value: f64, reference: f64) -> bool {
        (value - reference).abs() <= self.band(reference)
    }
}

/// First point at which two waveforms disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Node (or signal) name.
    pub node: String,
    /// Time of the offending sample (s); `0.0` for DC comparisons.
    pub time: f64,
    /// Value from the side under test.
    pub got: f64,
    /// Reference value (oracle, or the other solver configuration).
    pub reference: f64,
    /// The tolerance band that was violated.
    pub bound: f64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at node `{}`, t = {:.6e} s: got {:.9e}, reference {:.9e} \
             (|Δ| = {:.3e} > bound {:.3e})",
            self.node,
            self.time,
            self.got,
            self.reference,
            (self.got - self.reference).abs(),
            self.bound
        )
    }
}

/// Compares a sampled waveform against a reference function evaluated at
/// the same sample times, reporting the first out-of-band point.
///
/// # Errors
///
/// The first [`Divergence`], or an input-length mismatch reported as a
/// divergence at `t = NaN`.
pub fn against_oracle(
    node: &str,
    times: &[f64],
    values: &[f64],
    oracle: impl Fn(f64) -> f64,
    tol: Tolerance,
) -> Result<(), Divergence> {
    for (&t, &v) in times.iter().zip(values.iter()) {
        let want = oracle(t);
        if !tol.within(v, want) {
            return Err(Divergence {
                node: node.into(),
                time: t,
                got: v,
                reference: want,
                bound: tol.band(want),
            });
        }
    }
    Ok(())
}

/// Compares two same-length sampled series, reporting the first
/// out-of-band point.
///
/// # Errors
///
/// The first [`Divergence`]; a length mismatch diverges at the first
/// missing index.
pub fn series(
    node: &str,
    times: &[f64],
    got: &[f64],
    reference: &[f64],
    tol: Tolerance,
) -> Result<(), Divergence> {
    if got.len() != reference.len() {
        return Err(Divergence {
            node: node.into(),
            time: times.last().copied().unwrap_or(0.0),
            got: got.len() as f64,
            reference: reference.len() as f64,
            bound: 0.0,
        });
    }
    for ((&t, &a), &b) in times.iter().zip(got.iter()).zip(reference.iter()) {
        if !tol.within(a, b) {
            return Err(Divergence {
                node: node.into(),
                time: t,
                got: a,
                reference: b,
                bound: tol.band(b),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_combines_abs_and_rel() {
        let tol = Tolerance::new(1e-3, 1e-2);
        assert!((tol.band(10.0) - 0.101).abs() < 1e-15);
        assert!(tol.within(10.05, 10.0));
        assert!(!tol.within(10.2, 10.0));
    }

    #[test]
    fn against_oracle_reports_first_bad_point() {
        let times = [0.0, 1.0, 2.0, 3.0];
        let values = [0.0, 1.0, 2.5, 3.0];
        let err = against_oracle("n1", &times, &values, |t| t, Tolerance::abs(0.1)).unwrap_err();
        assert_eq!(err.time, 2.0);
        assert_eq!(err.got, 2.5);
        assert_eq!(err.reference, 2.0);
        assert!(err.to_string().contains("node `n1`"));
    }

    #[test]
    fn series_detects_length_mismatch() {
        let err = series("x", &[0.0, 1.0], &[1.0, 2.0], &[1.0], Tolerance::abs(1.0)).unwrap_err();
        assert_eq!(err.got, 2.0);
        assert_eq!(err.reference, 1.0);
    }

    #[test]
    fn matching_series_pass() {
        let t = [0.0, 1.0];
        assert!(series(
            "x",
            &t,
            &[1.0, 2.0],
            &[1.0, 2.0 + 1e-12],
            Tolerance::abs(1e-9)
        )
        .is_ok());
    }
}
