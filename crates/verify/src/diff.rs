//! Differential testing: one deck, several solver configurations, one
//! answer.
//!
//! Three axes of the stack have independent implementations that must
//! agree on every deck in [`decks`]:
//!
//! * **Integration method** — trapezoidal vs backward Euler agree to
//!   within their integration-order error bound.
//! * **Matrix backend** — dense vs sparse LU (pinned through
//!   [`SolveProfile::matrix_backend`]) agree to linear-solver rounding.
//! * **Harness parallelism** — 1 thread vs N threads produce *bitwise
//!   identical* artifacts, because per-job seeding is derived from the
//!   spec, never from scheduling.
//!
//! A failure reports the first diverging node, time, and both values.
//!
//! [`SolveProfile::matrix_backend`]: nemscmos_spice::profile::SolveProfile

use nemscmos_devices::mosfet::{MosModel, Mosfet};
use nemscmos_harness::{HarnessError, JobSpec, Json, JsonCodec, RetryPolicy, Runner};
use nemscmos_spice::analysis::tran::{transient, IntegrationMethod, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::element::NodeId;
use nemscmos_spice::profile::{self, MatrixBackend, SolveProfile};
use nemscmos_spice::result::TranResult;
use nemscmos_spice::waveform::Waveform;

use crate::compare::{Divergence, Tolerance};

/// A freshly built circuit plus the observed `(name, node)` pairs.
type BuiltDeck = (Circuit, Vec<(String, NodeId)>);

/// A named, reproducible test deck.
pub struct Deck {
    /// Deck name, used in reports and golden-snapshot paths.
    pub name: &'static str,
    /// Transient horizon (s).
    pub tstop: f64,
    build: fn() -> BuiltDeck,
}

impl Deck {
    /// Builds a fresh circuit plus the observed (name, node) pairs.
    pub fn build(&self) -> BuiltDeck {
        (self.build)()
    }
}

fn rc_ladder_pulse() -> BuiltDeck {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    ckt.vsource(
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, 1.2, 0.2e-9, 50e-12, 50e-12, 1.0e-9, 2.4e-9),
    );
    let mut prev = inp;
    let mut watch = Vec::new();
    for i in 0..5 {
        let n = ckt.node(&format!("n{i}"));
        ckt.resistor(prev, n, 2e3);
        ckt.capacitor(n, Circuit::GROUND, 20e-15);
        prev = n;
        watch.push((format!("n{i}"), n));
    }
    (ckt, watch)
}

fn rlc_tank() -> BuiltDeck {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let out = ckt.node("out");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
    ckt.resistor(a, b, 50.0);
    ckt.inductor(b, out, 10e-9);
    ckt.capacitor(out, Circuit::GROUND, 1e-12);
    ckt.set_ic(out, 0.0);
    (ckt, vec![("out".into(), out)])
}

fn cmos_inverter() -> BuiltDeck {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
    ckt.vsource(
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, 1.2, 0.3e-9, 30e-12, 30e-12, 1.2e-9, 3.0e-9),
    );
    ckt.add_device(Mosfet::new("mp", MosModel::pmos_90nm(), out, inp, vdd, 2.0));
    ckt.add_device(Mosfet::new(
        "mn",
        MosModel::nmos_90nm(),
        out,
        inp,
        Circuit::GROUND,
        1.0,
    ));
    ckt.capacitor(out, Circuit::GROUND, 5e-15);
    (ckt, vec![("out".into(), out)])
}

fn nmos_cascade() -> BuiltDeck {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("in");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
    ckt.vsource(
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, 1.2, 0.2e-9, 40e-12, 40e-12, 1.0e-9, 2.4e-9),
    );
    let mut gate = inp;
    let mut watch = Vec::new();
    for i in 0..3 {
        let d = ckt.node(&format!("d{i}"));
        ckt.resistor(vdd, d, 20e3);
        ckt.add_device(Mosfet::new(
            format!("m{i}"),
            MosModel::nmos_90nm(),
            d,
            gate,
            Circuit::GROUND,
            1.0,
        ));
        ckt.capacitor(d, Circuit::GROUND, 2e-15);
        watch.push((format!("d{i}"), d));
        gate = d;
    }
    (ckt, watch)
}

fn wide_rc_ladder() -> BuiltDeck {
    // 80 ladder nodes: above the stamper's dense limit, so the *default*
    // backend here is sparse and the dense override is the unusual path.
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    ckt.vsource(
        inp,
        Circuit::GROUND,
        Waveform::step(0.0, 1.0, 0.1e-9, 50e-12),
    );
    let mut prev = inp;
    let mut watch = Vec::new();
    for i in 0..80 {
        let n = ckt.node(&format!("w{i}"));
        ckt.resistor(prev, n, 500.0);
        ckt.capacitor(n, Circuit::GROUND, 5e-15);
        if i % 16 == 15 {
            watch.push((format!("w{i}"), n));
        }
        prev = n;
    }
    (ckt, watch)
}

fn diode_charge() -> BuiltDeck {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let d = ckt.node("d");
    ckt.vsource(
        vdd,
        Circuit::GROUND,
        Waveform::step(0.0, 1.2, 0.1e-9, 50e-12),
    );
    ckt.resistor(vdd, d, 50e3);
    ckt.add_device(Mosfet::new(
        "md",
        MosModel::nmos_90nm(),
        d,
        d,
        Circuit::GROUND,
        1.0,
    ));
    ckt.capacitor(d, Circuit::GROUND, 10e-15);
    (ckt, vec![("d".into(), d)])
}

/// The differential test fleet: six decks spanning linear RC/RLC,
/// nonlinear MOSFET stages, and a ladder wide enough to cross the
/// dense/sparse backend threshold.
pub fn decks() -> Vec<Deck> {
    vec![
        Deck {
            name: "rc-ladder-pulse",
            tstop: 2.0e-9,
            build: rc_ladder_pulse,
        },
        Deck {
            name: "rlc-tank",
            tstop: 4.0e-9,
            build: rlc_tank,
        },
        Deck {
            name: "cmos-inverter",
            tstop: 2.5e-9,
            build: cmos_inverter,
        },
        Deck {
            name: "nmos-cascade",
            tstop: 2.0e-9,
            build: nmos_cascade,
        },
        Deck {
            name: "wide-rc-ladder",
            tstop: 1.5e-9,
            build: wide_rc_ladder,
        },
        Deck {
            name: "diode-charge",
            tstop: 2.0e-9,
            build: diode_charge,
        },
    ]
}

fn run_deck(deck: &Deck, opts: &TranOptions) -> (TranResult, Vec<(String, NodeId)>) {
    let (mut ckt, watch) = deck.build();
    let res = transient(&mut ckt, deck.tstop, opts)
        .unwrap_or_else(|e| panic!("deck `{}` failed: {e}", deck.name));
    (res, watch)
}

/// Compares two runs of a deck node-by-node on a uniform sample grid.
fn compare_runs(
    deck: &Deck,
    a: &(TranResult, Vec<(String, NodeId)>),
    b: &(TranResult, Vec<(String, NodeId)>),
    tol_of_scale: impl Fn(f64) -> Tolerance,
) -> Result<(), Divergence> {
    const SAMPLES: usize = 201;
    for (name, node) in &a.1 {
        let ta = a.0.voltage(*node);
        let tb = b.0.voltage(*node);
        let scale = ta.max_value().abs().max(ta.min_value().abs()).max(1e-6);
        let tol = tol_of_scale(scale);
        for k in 0..SAMPLES {
            let t = deck.tstop * k as f64 / (SAMPLES - 1) as f64;
            let va = ta.eval(t);
            let vb = tb.eval(t);
            if !tol.within(va, vb) {
                return Err(Divergence {
                    node: name.clone(),
                    time: t,
                    got: va,
                    reference: vb,
                    bound: tol.band(vb),
                });
            }
        }
    }
    Ok(())
}

/// Trapezoidal and backward Euler must agree within the lower method's
/// integration-order error bound.
///
/// # Errors
///
/// The first diverging (node, time) pair.
pub fn trap_vs_be(deck: &Deck) -> Result<(), Divergence> {
    let trap = run_deck(
        deck,
        &TranOptions {
            method: IntegrationMethod::Trapezoidal,
            ..Default::default()
        },
    );
    let be = run_deck(
        deck,
        &TranOptions {
            method: IntegrationMethod::BackwardEuler,
            ..Default::default()
        },
    );
    // Backward Euler is first order: the controller holds each step's
    // LTE near `lte_tol`, so the accumulated divergence stays within a
    // few percent of the signal scale.
    compare_runs(deck, &trap, &be, |scale| Tolerance::new(0.03 * scale, 0.03))
}

/// Dense and sparse LU must agree to linear-solver rounding, pinned via
/// the thread-local solve profile.
///
/// # Errors
///
/// The first diverging (node, time) pair.
pub fn dense_vs_sparse(deck: &Deck) -> Result<(), Divergence> {
    let pin = |backend| SolveProfile {
        matrix_backend: Some(backend),
        ..Default::default()
    };
    let dense = profile::with(pin(MatrixBackend::Dense), || {
        run_deck(deck, &TranOptions::default())
    });
    let sparse = profile::with(pin(MatrixBackend::Sparse), || {
        run_deck(deck, &TranOptions::default())
    });
    // Different pivot orders perturb each solve at rounding level; the
    // adaptive controller can amplify that slightly, but agreement must
    // stay far below any physical scale.
    compare_runs(deck, &dense, &sparse, |scale| {
        Tolerance::new(1e-6 * scale, 1e-6)
    })
}

/// The fill-reducing column ordering must not change what the sparse
/// solver computes, only how much fill it creates doing so. Both sides
/// pin the sparse backend; the natural side disables the ordering via
/// [`SolveProfile::natural_ordering`], the ordered side forces it on
/// every deck (the goldens are all below the size threshold) via
/// [`SolveProfile::ordering_limit`] `Some(0)`.
///
/// Unlike `fast_vs_slow` this is a tolerance comparison, not a byte
/// comparison: permuting the elimination order changes the partial-pivot
/// sequence, so the two factorizations round differently at the last
/// ulp and the adaptive controller can amplify that slightly.
///
/// # Errors
///
/// The first diverging (node, time) pair.
///
/// [`SolveProfile::natural_ordering`]: nemscmos_spice::profile::SolveProfile::natural_ordering
/// [`SolveProfile::ordering_limit`]: nemscmos_spice::profile::SolveProfile::ordering_limit
pub fn ordered_vs_natural(deck: &Deck) -> Result<(), Divergence> {
    let natural = profile::with(
        SolveProfile {
            matrix_backend: Some(MatrixBackend::Sparse),
            natural_ordering: true,
            ..Default::default()
        },
        || run_deck(deck, &TranOptions::default()),
    );
    let ordered = profile::with(
        SolveProfile {
            matrix_backend: Some(MatrixBackend::Sparse),
            ordering_limit: Some(0),
            ..Default::default()
        },
        || run_deck(deck, &TranOptions::default()),
    );
    compare_runs(deck, &natural, &ordered, |scale| {
        Tolerance::new(1e-6 * scale, 1e-6)
    })
}

/// The incremental linear-algebra fast path (pattern-frozen assembly,
/// symbolic LU reuse, linear-circuit bypass) must be *bitwise identical*
/// to the from-scratch path it replaces: the rendered JSON snapshot of
/// every deck must not change by a single byte when the fast path is
/// disabled via [`SolveProfile::legacy_linear_algebra`].
///
/// # Errors
///
/// A message naming the deck and the rendered sizes when the artifacts
/// differ.
///
/// [`SolveProfile::legacy_linear_algebra`]: nemscmos_spice::profile::SolveProfile::legacy_linear_algebra
pub fn fast_vs_slow(deck: &Deck) -> Result<(), String> {
    let fast = snapshot_json(deck).render();
    let slow = profile::with(
        SolveProfile {
            legacy_linear_algebra: true,
            ..Default::default()
        },
        || snapshot_json(deck).render(),
    );
    if fast != slow {
        return Err(format!(
            "deck `{}` differs between the fast and legacy linear-algebra \
             paths ({} vs {} rendered bytes)",
            deck.name,
            fast.len(),
            slow.len()
        ));
    }
    Ok(())
}

/// The structure-of-arrays batched device-evaluation path must be
/// *bitwise identical* to the one-instance-at-a-time path it replaces:
/// the rendered JSON snapshot of every deck must not change by a single
/// byte when batching is disabled via
/// [`SolveProfile::scalar_device_eval`].
///
/// # Errors
///
/// A message naming the deck and the rendered sizes when the artifacts
/// differ.
///
/// [`SolveProfile::scalar_device_eval`]: nemscmos_spice::profile::SolveProfile::scalar_device_eval
pub fn batched_vs_scalar(deck: &Deck) -> Result<(), String> {
    let batched = snapshot_json(deck).render();
    let scalar = profile::with(
        SolveProfile {
            scalar_device_eval: true,
            ..Default::default()
        },
        || snapshot_json(deck).render(),
    );
    if batched != scalar {
        return Err(format!(
            "deck `{}` differs between the batched and scalar device-eval \
             paths ({} vs {} rendered bytes)",
            deck.name,
            batched.len(),
            scalar.len()
        ));
    }
    Ok(())
}

/// [`batched_vs_scalar`] with a seeded fault plan installed identically
/// around both runs: a mild Jacobian perturbation keeps the residual
/// exact (so both paths still converge to the true solution) while
/// forcing extra Newton iterations through the fault machinery. Both
/// paths must see the identical fault stream and produce byte-identical
/// snapshots.
///
/// # Errors
///
/// A message naming the deck when the faulted artifacts differ.
pub fn batched_vs_scalar_faulted(deck: &Deck, seed: u64) -> Result<(), String> {
    use nemscmos_spice::faults::{self, Disarm, FaultKind, FaultPlan};
    let plan = FaultPlan::immediate(
        FaultKind::JacobianPerturb { relative: 1e-4 },
        Disarm::AfterTriggers(5),
        seed,
    );
    let batched = faults::with(plan, || snapshot_json(deck).render());
    let scalar = profile::with(
        SolveProfile {
            scalar_device_eval: true,
            ..Default::default()
        },
        || faults::with(plan, || snapshot_json(deck).render()),
    );
    if batched != scalar {
        return Err(format!(
            "deck `{}` (fault seed {seed}) differs between the batched and \
             scalar device-eval paths ({} vs {} rendered bytes)",
            deck.name,
            batched.len(),
            scalar.len()
        ));
    }
    Ok(())
}

/// A deck's waveforms rendered as canonical JSON (times plus one value
/// array per observed node), decimated to a fixed grid so artifacts are
/// small and digest-stable.
pub fn snapshot_json(deck: &Deck) -> Json {
    const SAMPLES: usize = 101;
    let (res, watch) = run_deck(deck, &TranOptions::default());
    let grid: Vec<f64> = (0..SAMPLES)
        .map(|k| deck.tstop * k as f64 / (SAMPLES - 1) as f64)
        .collect();
    let mut fields = vec![
        ("deck".to_string(), Json::Str(deck.name.to_string())),
        (
            "times".to_string(),
            Json::Arr(grid.iter().map(|&t| Json::Num(t)).collect()),
        ),
    ];
    for (name, node) in &watch {
        let tr = res.voltage(*node);
        fields.push((
            format!("v({name})"),
            Json::Arr(grid.iter().map(|&t| Json::Num(tr.eval(t))).collect()),
        ));
    }
    Json::Obj(fields)
}

/// Opaque JSON artifact for harness jobs (`run` needs a codec).
#[derive(Debug, Clone, PartialEq)]
struct Artifact(Json);

impl JsonCodec for Artifact {
    fn to_json(&self) -> Json {
        self.0.clone()
    }
    fn from_json(v: &Json) -> Option<Artifact> {
        Some(Artifact(v.clone()))
    }
}

fn render_fleet(threads: usize) -> Result<Vec<String>, HarnessError> {
    let fleet = decks();
    let jobs: Vec<JobSpec> = fleet
        .iter()
        .map(|d| JobSpec::new(d.name, format!("verify-diff v1 deck={}", d.name)))
        .collect();
    let runner = Runner::with_config(threads, None, RetryPolicy::default());
    let out = runner.run("verify-thread-identity", &jobs, |i, _attempt| {
        Ok(Artifact(snapshot_json(&fleet[i])))
    })?;
    Ok(out.into_iter().map(|a| a.0.render()).collect())
}

/// Runs every deck through the harness with 1 thread and with
/// `threads`, and demands bitwise-identical rendered artifacts.
///
/// # Errors
///
/// The name of the first deck whose artifacts differ, or a harness
/// error.
pub fn thread_identity(threads: usize) -> Result<(), String> {
    let serial = render_fleet(1).map_err(|e| format!("serial run failed: {e}"))?;
    let parallel = render_fleet(threads).map_err(|e| format!("parallel run failed: {e}"))?;
    for ((deck, a), b) in decks().iter().zip(&serial).zip(&parallel) {
        if a != b {
            return Err(format!(
                "deck `{}` differs between 1 and {threads} harness threads \
                 ({} vs {} rendered bytes)",
                deck.name,
                a.len(),
                b.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_at_least_five_decks() {
        assert!(decks().len() >= 5);
    }

    #[test]
    fn wide_ladder_crosses_dense_limit() {
        let (mut ckt, _) = decks()
            .iter()
            .find(|d| d.name == "wide-rc-ladder")
            .unwrap()
            .build();
        assert!(ckt.num_unknowns() > 64);
    }
}
