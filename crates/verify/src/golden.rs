//! Committed golden waveform snapshots.
//!
//! Every deck in [`diff::decks`] renders a canonical, decimated JSON
//! artifact ([`diff::snapshot_json`]). The blessed copies live in
//! `crates/verify/golden/*.json`; [`check`] demands a byte-for-byte
//! match, and [`bless`] rewrites them. CI runs check mode (via
//! `cargo run -p nemscmos-verify --bin golden`); a developer who
//! intentionally changes solver behaviour re-blesses with `-- --bless`
//! and reviews the waveform diff like any other code change.
//!
//! Artifacts are digest-stable because the JSON renderer prints `f64`
//! via the shortest round-trip form and the simulations are fully
//! deterministic (fixed decks, fixed options, no wall clock, no
//! threading in the values themselves).

use std::fs;
use std::path::{Path, PathBuf};

use crate::diff;

/// One named golden artifact: the deck name and its rendered JSON.
pub struct Artifact {
    /// Deck name (also the file stem under `golden/`).
    pub name: &'static str,
    /// Canonical rendered JSON, trailing newline included.
    pub rendered: String,
}

/// The directory holding the blessed snapshots.
pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Renders every deck's artifact (runs the simulations).
pub fn artifacts() -> Vec<Artifact> {
    diff::decks()
        .iter()
        .map(|d| Artifact {
            name: d.name,
            rendered: diff::snapshot_json(d).render() + "\n",
        })
        .collect()
}

/// Result of checking one artifact against its blessed copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// Byte-for-byte match.
    Match,
    /// No blessed copy exists yet.
    Missing,
    /// Blessed copy differs; carries the first differing line number.
    Differs {
        /// 1-based first line that differs.
        line: usize,
    },
}

/// Compares one artifact against the blessed file.
pub fn check_one(art: &Artifact) -> Drift {
    let path = golden_dir().join(format!("{}.json", art.name));
    let Ok(blessed) = fs::read_to_string(&path) else {
        return Drift::Missing;
    };
    if blessed == art.rendered {
        return Drift::Match;
    }
    let line = blessed
        .lines()
        .zip(art.rendered.lines())
        .position(|(a, b)| a != b)
        .map_or_else(
            || blessed.lines().count().min(art.rendered.lines().count()) + 1,
            |i| i + 1,
        );
    Drift::Differs { line }
}

/// Checks every artifact; returns the names that drifted (with detail).
pub fn check() -> Vec<(String, Drift)> {
    artifacts()
        .iter()
        .filter_map(|a| match check_one(a) {
            Drift::Match => None,
            drift => Some((a.name.to_string(), drift)),
        })
        .collect()
}

/// Rewrites every blessed snapshot from the current engine output.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn bless() -> Result<Vec<String>, String> {
    let dir = golden_dir();
    fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for art in artifacts() {
        let path = dir.join(format!("{}.json", art.name));
        fs::write(&path, &art.rendered).map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_deterministic() {
        // Two fresh renders of the same deck must be byte-identical —
        // this is the property the committed snapshots rely on.
        let deck = &diff::decks()[0];
        let a = diff::snapshot_json(deck).render();
        let b = diff::snapshot_json(deck).render();
        assert_eq!(a, b);
    }

    #[test]
    fn check_one_reports_missing_for_unknown_artifact() {
        let art = Artifact {
            name: "no-such-deck",
            rendered: "{}\n".into(),
        };
        assert_eq!(check_one(&art), Drift::Missing);
    }
}
