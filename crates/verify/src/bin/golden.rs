//! Golden-snapshot gate: check committed waveform snapshots, or refresh
//! them with `--bless`.
//!
//! ```text
//! cargo run -p nemscmos-verify --bin golden            # check (CI mode)
//! cargo run -p nemscmos-verify --bin golden -- --bless # rewrite snapshots
//! ```
//!
//! Check mode exits nonzero on any drift or missing snapshot. The
//! `NEMSCMOS_BLESS=1` environment variable is honored as an alternative
//! to the flag, for workflows that cannot pass program arguments.

use std::process::ExitCode;

use nemscmos_verify::golden;

fn main() -> ExitCode {
    let bless_flag = std::env::args().skip(1).any(|a| a == "--bless");
    let bless_env = std::env::var("NEMSCMOS_BLESS").is_ok_and(|v| v == "1");
    if bless_flag || bless_env {
        match golden::bless() {
            Ok(paths) => {
                for p in &paths {
                    println!("blessed {p}");
                }
                println!("{} snapshot(s) written", paths.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let drifted = golden::check();
        if drifted.is_empty() {
            println!("golden: all {} snapshots match", golden::artifacts().len());
            ExitCode::SUCCESS
        } else {
            for (name, drift) in &drifted {
                match drift {
                    golden::Drift::Missing => eprintln!("golden: `{name}` has no blessed snapshot"),
                    golden::Drift::Differs { line } => eprintln!(
                        "golden: `{name}` drifted from its blessed snapshot (first diff at line {line})"
                    ),
                    golden::Drift::Match => unreachable!("matches are filtered"),
                }
            }
            eprintln!(
                "golden: {} snapshot(s) drifted — if intentional, re-bless with \
                 `cargo run -p nemscmos-verify --bin golden -- --bless` and commit the diff",
                drifted.len()
            );
            ExitCode::FAILURE
        }
    }
}
