//! Golden-reference verification for the `nemscmos` workspace.
//!
//! The simulator's unit tests check that individual pieces behave; this
//! crate checks that the *assembled* stack tells the truth, three ways:
//!
//! * [`oracle`] — closed-form RC/RL/RLC transients and scalar-bisection
//!   MOSFET DC solutions that the full MNA/Newton engine must reproduce
//!   within tolerance bands ([`compare`]), plus
//!   method-of-manufactured-solutions residual checks ([`mms`]) where
//!   the exact nonlinear solution is known by construction.
//! * [`diff`] — differential testing: the same deck integrated with
//!   trapezoidal vs backward Euler, assembled dense vs sparse, and run
//!   through 1 vs N harness threads must agree (within integration-order
//!   bounds; bitwise for thread count). Disagreement produces a
//!   first-divergence report naming the node, time, and both values.
//! * [`claims`] — a machine-readable registry of the DAC 2007 paper's
//!   quantitative claims (`claims.toml`), evaluated into a pass/fail
//!   scoreboard by `cargo run -p nemscmos-bench --bin conformance`.
//!
//! [`golden`] adds committed waveform snapshots: canonical JSON renders
//! of small deterministic simulations, checked bit-for-bit in CI and
//! refreshed explicitly with `cargo run -p nemscmos-verify --bin golden
//! -- --bless`.

pub mod claims;
pub mod compare;
pub mod diff;
pub mod golden;
pub mod mms;
pub mod oracle;
