//! The paper-claims registry: parse `claims.toml`, evaluate measured
//! metrics against it, and render the conformance scoreboard.
//!
//! The file format is a deliberately tiny TOML subset — an array of
//! `[[claim]]` tables whose values are strings, numbers, or booleans —
//! parsed by [`parse_claims`] with no external dependency. The builtin
//! registry ([`builtin`]) is embedded at compile time so the
//! conformance binary cannot drift from the checked-in file.

use std::collections::BTreeMap;
use std::fmt;

/// One quantitative claim from the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Stable identifier (kebab-case).
    pub id: String,
    /// Human-readable statement.
    pub title: String,
    /// Paper artifact the claim comes from (e.g. `"Fig. 11"`).
    pub source: String,
    /// Key under which the conformance binary reports the measurement.
    pub metric: String,
    /// The paper's stated value.
    pub expected: f64,
    /// Lower acceptance bound (unbounded if absent).
    pub min: Option<f64>,
    /// Upper acceptance bound (unbounded if absent).
    pub max: Option<f64>,
    /// Release-blocking claim?
    pub headline: bool,
}

/// A claim evaluated against a measured metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimResult {
    /// The claim.
    pub claim: Claim,
    /// Measured value, if the metric was reported.
    pub measured: Option<f64>,
    /// Within bounds?
    pub pass: bool,
}

impl ClaimResult {
    /// Signed deviation from the paper's value, as a percentage of it
    /// (`None` when unmeasured or `expected == 0`).
    pub fn margin_pct(&self) -> Option<f64> {
        let m = self.measured?;
        (self.claim.expected != 0.0)
            .then(|| 100.0 * (m - self.claim.expected) / self.claim.expected)
    }
}

/// The full conformance scoreboard.
#[derive(Debug, Clone, PartialEq)]
pub struct Scoreboard {
    /// Per-claim outcomes, in registry order.
    pub rows: Vec<ClaimResult>,
}

impl Scoreboard {
    /// Every claim passed.
    pub fn all_pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Every headline claim passed.
    pub fn headlines_pass(&self) -> bool {
        self.rows
            .iter()
            .filter(|r| r.claim.headline)
            .all(|r| r.pass)
    }

    /// Count of passing claims.
    pub fn passed(&self) -> usize {
        self.rows.iter().filter(|r| r.pass).count()
    }
}

impl fmt::Display for Scoreboard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:<9} {:>14} {:>14} {:>9}  verdict",
            "claim", "source", "measured", "expected", "margin"
        )?;
        writeln!(f, "{}", "-".repeat(84))?;
        for r in &self.rows {
            let measured = r
                .measured
                .map_or_else(|| "(missing)".to_string(), |m| format!("{m:.4e}"));
            let margin = r
                .margin_pct()
                .map_or_else(|| "-".to_string(), |p| format!("{p:+.1}%"));
            let verdict = match (r.pass, r.claim.headline) {
                (true, _) => "PASS",
                (false, true) => "FAIL (headline)",
                (false, false) => "FAIL",
            };
            writeln!(
                f,
                "{:<24} {:<9} {:>14} {:>14.4e} {:>9}  {}",
                r.claim.id, r.claim.source, measured, r.claim.expected, margin, verdict
            )?;
        }
        write!(
            f,
            "{}/{} claims pass ({} headline)",
            self.passed(),
            self.rows.len(),
            self.rows.iter().filter(|r| r.claim.headline).count()
        )
    }
}

/// Evaluates `claims` against the `metrics` map (metric name → value).
pub fn evaluate(claims: &[Claim], metrics: &BTreeMap<String, f64>) -> Scoreboard {
    let rows = claims
        .iter()
        .map(|c| {
            let measured = metrics.get(&c.metric).copied();
            let pass = measured.is_some_and(|m| {
                m.is_finite() && c.min.is_none_or(|lo| m >= lo) && c.max.is_none_or(|hi| m <= hi)
            });
            ClaimResult {
                claim: c.clone(),
                measured,
                pass,
            }
        })
        .collect();
    Scoreboard { rows }
}

/// The registry checked into `crates/verify/claims.toml`.
///
/// # Panics
///
/// Panics if the embedded file fails to parse — a build-time artifact
/// error, caught by the crate's tests.
pub fn builtin() -> Vec<Claim> {
    parse_claims(include_str!("../claims.toml")).expect("embedded claims.toml must parse")
}

/// One parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
}

fn parse_value(raw: &str) -> Result<Value, String> {
    let raw = raw.trim();
    if let Some(body) = raw.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unterminated string: {raw}"));
        };
        if body.contains('"') || body.contains('\\') {
            return Err(format!("escapes unsupported in claims strings: {raw}"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    raw.replace('_', "")
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("unparseable value: {raw}"))
}

/// Parses the `[[claim]]` array-of-tables subset.
///
/// # Errors
///
/// A message naming the offending line for any construct outside the
/// subset, an unknown key, or a claim missing required fields.
pub fn parse_claims(text: &str) -> Result<Vec<Claim>, String> {
    let mut tables: Vec<BTreeMap<String, Value>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            // Only treat `#` as a comment when it is not inside a string;
            // the subset forbids `#` in strings entirely for simplicity.
            Some(pos) => &line[..pos],
            None => line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[claim]]" {
            tables.push(BTreeMap::new());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {}: only [[claim]] tables allowed",
                lineno + 1
            ));
        }
        let Some((key, raw)) = line.split_once('=') else {
            return Err(format!("line {}: expected key = value", lineno + 1));
        };
        let Some(table) = tables.last_mut() else {
            return Err(format!("line {}: key before first [[claim]]", lineno + 1));
        };
        let value = parse_value(raw).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        table.insert(key.trim().to_string(), value);
    }
    tables
        .into_iter()
        .enumerate()
        .map(claim_from_table)
        .collect()
}

fn claim_from_table((idx, mut t): (usize, BTreeMap<String, Value>)) -> Result<Claim, String> {
    let mut take_str = |key: &str| match t.remove(key) {
        Some(Value::Str(s)) => Ok(s),
        Some(_) => Err(format!("claim {idx}: `{key}` must be a string")),
        None => Err(format!("claim {idx}: missing `{key}`")),
    };
    let id = take_str("id")?;
    let title = take_str("title")?;
    let source = take_str("source")?;
    let metric = take_str("metric")?;
    let mut take_num = |key: &str| match t.remove(key) {
        Some(Value::Num(n)) => Ok(Some(n)),
        Some(_) => Err(format!("claim `{id}`: `{key}` must be a number")),
        None => Ok(None),
    };
    let expected =
        take_num("expected")?.ok_or_else(|| format!("claim `{id}`: missing `expected`"))?;
    let min = take_num("min")?;
    let max = take_num("max")?;
    let headline = match t.remove("headline") {
        Some(Value::Bool(b)) => b,
        Some(_) => return Err(format!("claim `{id}`: `headline` must be a boolean")),
        None => false,
    };
    if min.is_none() && max.is_none() {
        return Err(format!("claim `{id}`: needs at least one of `min` / `max`"));
    }
    if let Some(stray) = t.keys().next() {
        return Err(format!("claim `{id}`: unknown key `{stray}`"));
    }
    Ok(Claim {
        id,
        title,
        source,
        metric,
        expected,
        min,
        max,
        headline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn builtin_registry_parses_and_is_nonempty() {
        let claims = builtin();
        assert!(claims.len() >= 9, "got {} claims", claims.len());
        assert_eq!(claims.iter().filter(|c| c.headline).count(), 3);
        // IDs are unique.
        let mut ids: Vec<&str> = claims.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), claims.len());
    }

    #[test]
    fn parses_minimal_claim() {
        let text = r#"
            [[claim]]
            id = "x"
            title = "t"
            source = "Fig. 1"
            metric = "m"
            expected = 2.0
            min = 1.0
            max = 3.0
            headline = true
        "#;
        let claims = parse_claims(text).unwrap();
        assert_eq!(claims.len(), 1);
        assert_eq!(claims[0].metric, "m");
        assert!(claims[0].headline);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_claims("id = \"x\"").is_err(), "key before table");
        assert!(parse_claims("[claim]").is_err(), "plain table");
        assert!(parse_claims("[[claim]]\nid").is_err(), "bare key");
        assert!(
            parse_claims("[[claim]]\nid = \"x\"\ntitle = \"t\"\nsource = \"s\"\nmetric = \"m\"\nexpected = 1.0")
                .is_err(),
            "no bounds"
        );
    }

    #[test]
    fn evaluate_checks_bounds_and_missing_metrics() {
        let claims = parse_claims(
            r#"
            [[claim]]
            id = "a"
            title = "t"
            source = "s"
            metric = "m1"
            expected = 10.0
            min = 8.0
            max = 12.0
            [[claim]]
            id = "b"
            title = "t"
            source = "s"
            metric = "m2"
            expected = 1.0
            min = 0.5
            headline = true
        "#,
        )
        .unwrap();
        let sb = evaluate(&claims, &metrics(&[("m1", 11.0)]));
        assert!(sb.rows[0].pass);
        assert!(!sb.rows[1].pass, "missing metric must fail");
        assert!(!sb.all_pass());
        assert!(!sb.headlines_pass());
        assert!((sb.rows[0].margin_pct().unwrap() - 10.0).abs() < 1e-12);

        let sb = evaluate(&claims, &metrics(&[("m1", 13.0), ("m2", 2.0)]));
        assert!(!sb.rows[0].pass, "above max must fail");
        assert!(sb.rows[1].pass, "one-sided bound passes");
        assert!(sb.headlines_pass());
    }

    #[test]
    fn scoreboard_renders_all_rows() {
        let sb = evaluate(&builtin(), &metrics(&[("crossover_fan_in", 12.0)]));
        let text = sb.to_string();
        assert!(text.contains("fan-in-crossover"));
        assert!(text.contains("FAIL (headline)"));
        assert!(text.lines().count() >= builtin().len() + 2);
    }
}
