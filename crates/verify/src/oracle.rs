//! Analytic oracles: closed-form solutions the full engine must match.
//!
//! Each `check_*` function builds a small deck whose exact response is
//! known in closed form, runs it through the public analysis entry
//! points (`op` / `transient`), and compares every returned sample
//! against the formula with a [`Tolerance`] band sized to the
//! integrator's truncation error. The closed forms themselves are `pub`
//! so the golden-snapshot and conformance layers can reuse them.
//!
//! Transient decks start from explicit zero initial conditions
//! (`use_ic_only`) rather than a settled DC point, so the classic
//! step-response formulas apply without rise-time corrections. The DC
//! oracles solve the *same* calibrated device model with scalar
//! bisection — one equation, one unknown — so a disagreement isolates
//! the MNA/Newton stack rather than the model.

use nemscmos_devices::mosfet::{MosModel, Mosfet};
use nemscmos_numeric::roots::bisect;
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::waveform::Waveform;

use crate::compare::{against_oracle, Divergence, Tolerance};

/// First-order step response `y(t) = y_inf (1 − e^{−t/τ})`.
pub fn first_order_step(y_inf: f64, tau: f64, t: f64) -> f64 {
    if t <= 0.0 {
        0.0
    } else {
        y_inf * (1.0 - (-t / tau).exp())
    }
}

/// Step response of a series-RLC capacitor voltage from rest,
/// `v'' + 2α v' + ω₀² v = ω₀² V`, valid in the underdamped and
/// overdamped regimes (tests avoid the critically damped razor edge).
pub fn second_order_step(v: f64, alpha: f64, omega0: f64, t: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    let disc = alpha * alpha - omega0 * omega0;
    if disc < 0.0 {
        let wd = (-disc).sqrt();
        v * (1.0 - (-alpha * t).exp() * ((wd * t).cos() + alpha / wd * (wd * t).sin()))
    } else {
        let rt = disc.sqrt();
        let s1 = -alpha + rt;
        let s2 = -alpha - rt;
        v * (1.0 - (s2 * (s1 * t).exp() - s1 * (s2 * t).exp()) / (s2 - s1))
    }
}

/// Default transient comparison band: the adaptive controller holds the
/// local truncation error near `lte_tol` (2 × 10⁻³ relative), so the
/// accumulated global error stays well inside 1 % of the step height.
fn tran_tol(scale: f64) -> Tolerance {
    Tolerance::new(8e-3 * scale.abs(), 5e-3)
}

/// RC charge: `V —R— node —C— ground` from `v_c(0) = 0` must follow
/// `V (1 − e^{−t/RC})`.
///
/// # Errors
///
/// The first out-of-band sample.
pub fn check_rc_step(r: f64, c: f64, v: f64) -> Result<(), Divergence> {
    let tau = r * c;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(v));
    ckt.resistor(a, b, r);
    ckt.capacitor(b, Circuit::GROUND, c);
    ckt.set_ic(b, 0.0);
    let opts = TranOptions {
        use_ic_only: true,
        ..Default::default()
    };
    let res = transient(&mut ckt, 8.0 * tau, &opts)
        .unwrap_or_else(|e| panic!("RC transient failed: {e}"));
    let tr = res.voltage(b);
    against_oracle(
        "b",
        tr.times(),
        tr.values(),
        |t| first_order_step(v, tau, t),
        tran_tol(v),
    )
}

/// RL energization: `V —R— node —L— ground` from `i_L(0) = 0`; the
/// inductor current must follow `(V/R)(1 − e^{−tR/L})`.
///
/// # Errors
///
/// The first out-of-band sample.
pub fn check_rl_step(r: f64, l: f64, v: f64) -> Result<(), Divergence> {
    let tau = l / r;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(v));
    ckt.resistor(a, b, r);
    let ind = ckt.inductor(b, Circuit::GROUND, l);
    let opts = TranOptions {
        use_ic_only: true,
        ..Default::default()
    };
    let res = transient(&mut ckt, 8.0 * tau, &opts)
        .unwrap_or_else(|e| panic!("RL transient failed: {e}"));
    let tr = res
        .element_current(&ckt, ind)
        .expect("inductor current trace");
    against_oracle(
        "i(L)",
        tr.times(),
        tr.values(),
        |t| first_order_step(v / r, tau, t),
        tran_tol(v / r),
    )
}

/// Series RLC step: `V —R— —L— node —C— ground` from rest; the capacitor
/// voltage must follow the second-order step response (underdamped ring
/// or overdamped creep, depending on the element values).
///
/// # Errors
///
/// The first out-of-band sample.
pub fn check_rlc_step(r: f64, l: f64, c: f64, v: f64) -> Result<(), Divergence> {
    let alpha = r / (2.0 * l);
    let omega0 = 1.0 / (l * c).sqrt();
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    let out = ckt.node("out");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(v));
    ckt.resistor(a, b, r);
    ckt.inductor(b, out, l);
    ckt.capacitor(out, Circuit::GROUND, c);
    ckt.set_ic(out, 0.0);
    let opts = TranOptions {
        use_ic_only: true,
        ..Default::default()
    };
    // Long enough to cover the ring-down (underdamped) or the slow pole
    // (overdamped).
    let tstop = 10.0 / alpha.min(omega0);
    let res =
        transient(&mut ckt, tstop, &opts).unwrap_or_else(|e| panic!("RLC transient failed: {e}"));
    let tr = res.voltage(out);
    // The ringing doubles the excursion, so scale the band to the
    // worst-case overshoot.
    against_oracle(
        "out",
        tr.times(),
        tr.values(),
        |t| second_order_step(v, alpha, omega0, t),
        tran_tol(2.0 * v),
    )
}

/// The drain voltage of a resistor-loaded common-source NMOS stage,
/// solved by scalar bisection on the *model itself*:
/// `(V_dd − v_d)/R = I_ds(v_g, v_d, 0)`.
pub fn nmos_loaded_vd(model: &MosModel, vg: f64, vdd: f64, r: f64, w: f64) -> f64 {
    let f = |vd: f64| (vdd - vd) / r - model.ids(vg, vd, 0.0, w).0;
    // f(0) = V_dd/R > 0 and f(V_dd) = −I_ds ≤ 0: always bracketed.
    bisect(f, 0.0, vdd, 1e-13, 200).expect("load line must bracket a root")
}

/// The drain voltage of a resistor-loaded *diode-connected* NMOS
/// (`gate = drain`): `(V_dd − v_d)/R = I_ds(v_d, v_d, 0)`.
pub fn nmos_diode_vd(model: &MosModel, vdd: f64, r: f64, w: f64) -> f64 {
    let f = |vd: f64| (vdd - vd) / r - model.ids(vd, vd, 0.0, w).0;
    bisect(f, 0.0, vdd, 1e-13, 200).expect("diode load line must bracket a root")
}

/// DC band for the MOSFET oracles: Newton converges to machine-level
/// residuals, so agreement must be far tighter than the transient bands.
fn dc_tol(scale: f64) -> Tolerance {
    Tolerance::new(1e-7 * scale.abs().max(1.0), 1e-7)
}

/// A resistor-loaded common-source stage solved by the full MNA/Newton
/// engine must land on the bisection solution of the load-line equation.
///
/// # Errors
///
/// A divergence at `t = 0` naming the drain node.
pub fn check_nmos_stage_dc(
    model: &MosModel,
    vg: f64,
    vdd: f64,
    r: f64,
    w: f64,
) -> Result<(), Divergence> {
    let want = nmos_loaded_vd(model, vg, vdd, r, w);
    let mut ckt = Circuit::new();
    let vdd_n = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.vsource(vdd_n, Circuit::GROUND, Waveform::dc(vdd));
    ckt.vsource(g, Circuit::GROUND, Waveform::dc(vg));
    ckt.resistor(vdd_n, d, r);
    ckt.add_device(Mosfet::new("m1", model.clone(), d, g, Circuit::GROUND, w));
    let res = op(&mut ckt).unwrap_or_else(|e| panic!("NMOS stage op failed: {e}"));
    let got = res.voltage(d);
    let tol = dc_tol(vdd);
    if tol.within(got, want) {
        Ok(())
    } else {
        Err(Divergence {
            node: "d".into(),
            time: 0.0,
            got,
            reference: want,
            bound: tol.band(want),
        })
    }
}

/// A diode-connected NMOS with a resistive pull-up, solved by the full
/// engine, must land on the bisection solution.
///
/// # Errors
///
/// A divergence at `t = 0` naming the drain node.
pub fn check_nmos_diode_dc(model: &MosModel, vdd: f64, r: f64, w: f64) -> Result<(), Divergence> {
    let want = nmos_diode_vd(model, vdd, r, w);
    let mut ckt = Circuit::new();
    let vdd_n = ckt.node("vdd");
    let d = ckt.node("d");
    ckt.vsource(vdd_n, Circuit::GROUND, Waveform::dc(vdd));
    ckt.resistor(vdd_n, d, r);
    // Gate tied to drain.
    ckt.add_device(Mosfet::new("m1", model.clone(), d, d, Circuit::GROUND, w));
    let res = op(&mut ckt).unwrap_or_else(|e| panic!("diode op failed: {e}"));
    let got = res.voltage(d);
    let tol = dc_tol(vdd);
    if tol.within(got, want) {
        Ok(())
    } else {
        Err(Divergence {
            node: "d".into(),
            time: 0.0,
            got,
            reference: want,
            bound: tol.band(want),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_step_hits_limits() {
        assert_eq!(first_order_step(2.0, 1.0, 0.0), 0.0);
        assert!((first_order_step(2.0, 1.0, 100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn second_order_step_settles_to_v() {
        // Underdamped and overdamped both settle to the drive level.
        assert!((second_order_step(1.0, 0.1, 1.0, 500.0) - 1.0).abs() < 1e-9);
        assert!((second_order_step(1.0, 3.0, 1.0, 500.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_line_bisection_is_consistent() {
        let m = MosModel::nmos_90nm();
        let vd = nmos_loaded_vd(&m, 1.2, 1.2, 10e3, 1.0);
        let i = m.ids(1.2, vd, 0.0, 1.0).0;
        assert!(((1.2 - vd) / 10e3 - i).abs() < 1e-10);
        assert!((0.0..=1.2).contains(&vd));
    }
}
