//! Method of manufactured solutions for the Newton/MNA stack.
//!
//! Pick the answer first, then build a problem whose exact solution it
//! is: a resistor ladder with a cubic nonlinear shunt at every node gets
//! an injected current at each node equal to the current that would
//! leave it *at the chosen target voltages*. KCL is then satisfied
//! exactly at the manufactured solution, so the operating-point solver
//! has no excuse — any deviation beyond Newton's convergence tolerance
//! is an assembly or solver bug, not modeling error.
//!
//! The ladder length is a parameter so the same check exercises both
//! the dense (small `n`) and sparse (`n > 64`) matrix backends.

use nemscmos_spice::analysis::op::op;
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::device::{Device, LoadContext, Solution};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::stamp::Stamper;
use nemscmos_spice::waveform::Waveform;

use crate::compare::{Divergence, Tolerance};

/// A nonlinear shunt `I(v) = g·v + a·v³` from one node to ground.
///
/// The cubic term makes the Jacobian state-dependent, so Newton must
/// actually iterate; `g > 0` keeps the element passive and the system
/// diagonally dominant.
#[derive(Debug)]
pub struct CubicShunt {
    name: String,
    node: NodeId,
    g: f64,
    a: f64,
}

impl CubicShunt {
    /// Creates the shunt at `node`.
    pub fn new(name: impl Into<String>, node: NodeId, g: f64, a: f64) -> CubicShunt {
        CubicShunt {
            name: name.into(),
            node,
            g,
            a,
        }
    }

    /// The branch current at voltage `v`.
    pub fn current(&self, v: f64) -> f64 {
        self.g * v + self.a * v * v * v
    }
}

impl Device for CubicShunt {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(&self, x: &Solution<'_>, _ctx: &LoadContext, st: &mut Stamper) {
        let v = x.v(self.node);
        let i = self.current(v);
        let di = self.g + 3.0 * self.a * v * v;
        st.nonlinear_current(self.node, NodeId::GROUND, i, &[(self.node, di)]);
    }

    fn commit(&mut self, _x: &Solution<'_>, _ctx: &LoadContext) -> bool {
        false
    }

    fn reset_state(&mut self) {}
}

/// Builds the manufactured ladder: `n` nodes joined by resistors `r`,
/// each with a [`CubicShunt`] `(g, a)` to ground and a current injection
/// chosen so the exact solution is `targets[i]`.
///
/// Returns the circuit, the nodes, and the manufactured node voltages.
pub fn manufactured_ladder(
    n: usize,
    r: f64,
    g: f64,
    a: f64,
    target: impl Fn(usize) -> f64,
) -> (Circuit, Vec<NodeId>, Vec<f64>) {
    assert!(n >= 1, "ladder needs at least one node");
    let targets: Vec<f64> = (0..n).map(target).collect();
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| ckt.node(&format!("m{i}"))).collect();
    for (i, &node) in nodes.iter().enumerate() {
        if i + 1 < n {
            ckt.resistor(node, nodes[i + 1], r);
        }
        ckt.add_device(CubicShunt::new(format!("q{i}"), node, g, a));
        // KCL at the manufactured solution: current leaving through the
        // ladder neighbours plus the shunt, balanced by the injection.
        let v = targets[i];
        let mut leaving = g * v + a * v * v * v;
        if i > 0 {
            leaving += (v - targets[i - 1]) / r;
        }
        if i + 1 < n {
            leaving += (v - targets[i + 1]) / r;
        }
        ckt.isource(Circuit::GROUND, node, Waveform::dc(leaving));
    }
    (ckt, nodes, targets)
}

/// Solves the manufactured ladder and checks every node against its
/// manufactured voltage.
///
/// # Errors
///
/// The first node off the manufactured solution (as a DC
/// [`Divergence`]).
pub fn check_manufactured_ladder(n: usize, r: f64, g: f64, a: f64) -> Result<(), Divergence> {
    // An interesting, sign-alternating profile within ±1 V.
    let (mut ckt, nodes, targets) =
        manufactured_ladder(n, r, g, a, |i| (0.3 + 0.07 * i as f64).sin());
    let res = op(&mut ckt).unwrap_or_else(|e| panic!("manufactured op failed: {e}"));
    let tol = Tolerance::new(1e-8, 1e-8);
    for (i, (&node, &want)) in nodes.iter().zip(targets.iter()).enumerate() {
        let got = res.voltage(node);
        if !tol.within(got, want) {
            return Err(Divergence {
                node: format!("m{i}"),
                time: 0.0,
                got,
                reference: want,
                bound: tol.band(want),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shunt_current_is_cubic() {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        let s = CubicShunt::new("q", n, 2.0, 0.5);
        assert!((s.current(2.0) - (4.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn single_node_manufactured_solution() {
        check_manufactured_ladder(1, 1e3, 1e-3, 5e-4).unwrap();
    }

    #[test]
    fn dense_sized_ladder_converges_to_target() {
        check_manufactured_ladder(12, 2e3, 1e-3, 8e-4).unwrap();
    }

    #[test]
    fn sparse_sized_ladder_converges_to_target() {
        // 80 unknowns crosses the stamper's dense/sparse threshold.
        check_manufactured_ladder(80, 2e3, 1e-3, 8e-4).unwrap();
    }
}
