//! Property-based tests of the circuit engine: linear-network theorems
//! that must hold for any randomly generated netlist. Runs on the
//! vendored `nemscmos_numeric::check` runner.

use nemscmos_numeric::check::{check, Config};
use nemscmos_numeric::prop_check;
use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::result::Trace;
use nemscmos_spice::waveform::Waveform;

/// Builds a resistor ladder `src — r\[0\] — n0 — r\[1\] — n1 … — ground`.
fn ladder(resistors: &[f64], vsrc: f64) -> (Circuit, Vec<nemscmos_spice::element::NodeId>) {
    let mut ckt = Circuit::new();
    let top = ckt.node("top");
    ckt.vsource(top, Circuit::GROUND, Waveform::dc(vsrc));
    let mut nodes = Vec::new();
    let mut prev = top;
    for (k, &r) in resistors.iter().enumerate() {
        let n = if k + 1 == resistors.len() {
            Circuit::GROUND
        } else {
            ckt.node(&format!("n{k}"))
        };
        ckt.resistor(prev, n, r);
        if !n.is_ground() {
            nodes.push(n);
        }
        prev = n;
    }
    (ckt, nodes)
}

/// Maximum principle: every node of a resistive divider lies between
/// the rails, and voltages decrease monotonically down the ladder.
#[test]
fn ladder_voltages_are_monotone() {
    check(
        "ladder voltages are monotone",
        &Config::default(),
        |d| (d.vec_of(2, 7, |d| d.f64_in(10.0, 1e5)), d.f64_in(0.1, 10.0)),
        |(rs, v)| {
            let (mut ckt, nodes) = ladder(rs, *v);
            let res = op(&mut ckt).unwrap();
            let mut prev = *v;
            for &n in &nodes {
                let vn = res.voltage(n);
                prop_check!(vn <= prev + 1e-9, "voltage must fall down the ladder");
                prop_check!(vn >= -1e-9, "node below ground: {vn}");
                prev = vn;
            }
            Ok(())
        },
    );
}

/// Superposition: with two sources driving a linear network, the
/// response equals the sum of the single-source responses.
#[test]
fn superposition_holds() {
    check(
        "superposition holds",
        &Config::default(),
        |d| {
            (
                d.f64_in(100.0, 1e5),
                d.f64_in(100.0, 1e5),
                d.f64_in(100.0, 1e5),
                d.f64_in(-5.0, 5.0),
                d.f64_in(-5.0, 5.0),
            )
        },
        |&(r1, r2, r3, va, vb)| {
            let solve = |va: f64, vb: f64| {
                let mut ckt = Circuit::new();
                let a = ckt.node("a");
                let b = ckt.node("b");
                let mid = ckt.node("mid");
                ckt.vsource(a, Circuit::GROUND, Waveform::dc(va));
                ckt.vsource(b, Circuit::GROUND, Waveform::dc(vb));
                ckt.resistor(a, mid, r1);
                ckt.resistor(b, mid, r2);
                ckt.resistor(mid, Circuit::GROUND, r3);
                op(&mut ckt).unwrap().voltage(mid)
            };
            let both = solve(va, vb);
            let only_a = solve(va, 0.0);
            let only_b = solve(0.0, vb);
            prop_check!(
                (both - only_a - only_b).abs() < 1e-9,
                "superposition off by {:.3e}",
                both - only_a - only_b
            );
            Ok(())
        },
    );
}

/// A driven RC network's transient settles to its DC operating point.
#[test]
fn transient_settles_to_dc() {
    check(
        "transient settles to dc",
        &Config::with_cases(24),
        |d| {
            (
                d.f64_in(100.0, 10e3),
                d.f64_in(1e-12, 1e-9),
                d.f64_in(0.1, 5.0),
            )
        },
        |&(r, c, v)| {
            let build = || {
                let mut ckt = Circuit::new();
                let a = ckt.node("a");
                let b = ckt.node("b");
                ckt.vsource(a, Circuit::GROUND, Waveform::dc(v));
                ckt.resistor(a, b, r);
                ckt.resistor(b, Circuit::GROUND, 2.0 * r);
                ckt.capacitor(b, Circuit::GROUND, c);
                (ckt, b)
            };
            let (mut ckt_dc, b) = build();
            let dc = op(&mut ckt_dc).unwrap().voltage(b);
            let (mut ckt_tr, b2) = build();
            let tau = r * c;
            let res = transient(&mut ckt_tr, 20.0 * tau, &TranOptions::default()).unwrap();
            let end = res.voltage(b2).last_value();
            prop_check!((end - dc).abs() < 1e-3 * v.max(1.0), "end {end} vs dc {dc}");
            Ok(())
        },
    );
}

/// Trace integral additivity: ∫[a,b] + ∫[b,c] = ∫[a,c].
#[test]
fn trace_integral_is_additive() {
    check(
        "trace integral is additive",
        &Config::default(),
        |d| (d.vec_of(3, 11, |d| d.f64_in(-2.0, 2.0)), d.f64_in(0.1, 0.9)),
        |(ys, split)| {
            let times: Vec<f64> = (0..ys.len()).map(|k| k as f64).collect();
            let span = *times.last().unwrap();
            let tr = Trace::new(times, ys.clone());
            let mid = split * span;
            let whole = tr.integral_between(0.0, span);
            let parts = tr.integral_between(0.0, mid) + tr.integral_between(mid, span);
            prop_check!(
                (whole - parts).abs() < 1e-9,
                "integral not additive: {whole} vs {parts}"
            );
            Ok(())
        },
    );
}

/// Netlist round trip: a random resistor ladder rendered as SPICE
/// text parses back into a circuit whose operating point matches the
/// directly-built one.
#[test]
fn netlist_roundtrip_matches_direct_build() {
    check(
        "netlist roundtrip matches direct build",
        &Config::default(),
        |d| (d.vec_of(2, 6, |d| d.f64_in(10.0, 1e5)), d.f64_in(0.1, 10.0)),
        |(rs, v)| {
            use nemscmos_spice::netlist::{parse_deck, NoDevices};
            // Direct build.
            let (mut direct, nodes) = ladder(rs, *v);
            let direct_res = op(&mut direct).unwrap();
            // Text render.
            let mut deck = format!("V1 top 0 DC {v}\n");
            let mut prev = "top".to_string();
            for (k, r) in rs.iter().enumerate() {
                let next = if k + 1 == rs.len() {
                    "0".to_string()
                } else {
                    format!("n{k}")
                };
                deck.push_str(&format!("R{k} {prev} {next} {r}\n"));
                prev = next;
            }
            deck.push_str(".op\n");
            let parsed = parse_deck(&deck, &NoDevices).unwrap();
            let mut ckt = parsed.circuit;
            let res = op(&mut ckt).unwrap();
            for (k, &n) in nodes.iter().enumerate() {
                let name = format!("n{k}");
                let via_deck = res.voltage(parsed.nodes[&name]);
                let via_direct = direct_res.voltage(n);
                prop_check!(
                    (via_deck - via_direct).abs() < 1e-9,
                    "node {name}: deck {via_deck} vs direct {via_direct}"
                );
            }
            Ok(())
        },
    );
}

/// Power balance in a divider: source power equals the sum of
/// resistor dissipations.
#[test]
fn power_balance() {
    check(
        "power balance",
        &Config::default(),
        |d| {
            (
                d.f64_in(100.0, 1e5),
                d.f64_in(100.0, 1e5),
                d.f64_in(0.1, 10.0),
            )
        },
        |&(r1, r2, v)| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let mid = ckt.node("mid");
            let src = ckt.vsource(a, Circuit::GROUND, Waveform::dc(v));
            ckt.resistor(a, mid, r1);
            ckt.resistor(mid, Circuit::GROUND, r2);
            let res = op(&mut ckt).unwrap();
            let p_src = v * (-res.source_current(src));
            let vm = res.voltage(mid);
            let p_r = (v - vm) * (v - vm) / r1 + vm * vm / r2;
            prop_check!(
                (p_src - p_r).abs() <= 1e-6 * p_src.abs().max(1e-12),
                "source power {p_src:.6e} vs dissipation {p_r:.6e}"
            );
            Ok(())
        },
    );
}
