//! Integration tests for solve budgets: cooperative cancellation
//! mid-Newton, deadlines mid-transient, and heartbeat publication.

use std::sync::Arc;
use std::time::Duration;

use nemscmos_spice::analysis::dc_sweep::dc_sweep;
use nemscmos_spice::analysis::op::{op, op_with, OpOptions};
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::budget::{self, Budget};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::stats::Heartbeat;
use nemscmos_spice::waveform::Waveform;
use nemscmos_spice::SpiceError;

fn divider() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
    ckt.resistor(a, b, 1e3);
    ckt.resistor(b, Circuit::GROUND, 1e3);
    ckt
}

fn rc_lowpass() -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, out, 1e3);
    ckt.capacitor(out, Circuit::GROUND, 1e-9);
    ckt
}

#[test]
fn pre_cancelled_flag_interrupts_the_first_newton_iteration() {
    let (b, flag) = Budget::cancellable();
    flag.cancel();
    let err = budget::with(b, || op(&mut divider())).unwrap_err();
    match err {
        SpiceError::Cancelled { spent, .. } => {
            // Cancelled before any iteration landed.
            assert_eq!(spent.newton_iterations, 0);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn cancellation_mid_newton_aborts_the_fallback_chain() {
    // An op that needs many damped iterations: cancel after the solve has
    // burned a few, and assert the whole fallback ladder (gmin stepping,
    // source stepping) bails out instead of restarting the solve.
    // 2 V answer at 10 µV per step: at least 200k damped iterations, a
    // window of tens of milliseconds — wide enough that the watcher
    // thread is scheduled and lands its cancel even on a loaded test
    // runner (with 1 mV steps the solve could finish first, flakily).
    let opts = OpOptions {
        newton: nemscmos_numeric::newton::NewtonOptions {
            max_step: 1e-5,
            max_iter: 10_000_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let (b, flag) = Budget::cancellable();
    let hb = Arc::new(Heartbeat::new());
    let b = b.with_heartbeat(Arc::clone(&hb));

    // Cancel from another thread once the heartbeat shows Newton working.
    let watcher = {
        let hb = Arc::clone(&hb);
        let flag = flag.clone();
        std::thread::spawn(move || loop {
            if hb.snapshot().newton_iterations >= 50 {
                flag.cancel();
                return;
            }
            std::thread::yield_now();
        })
    };
    let err = budget::with(b, || op_with(&mut divider(), &opts)).unwrap_err();
    watcher.join().unwrap();
    match err {
        SpiceError::Cancelled { spent, .. } => {
            assert!(
                spent.newton_iterations >= 50,
                "partial telemetry missing: {spent:?}"
            );
            // Cancellation is prompt: nowhere near the full damped solve
            // (which needs at least 200k iterations to move 2 V).
            assert!(spent.newton_iterations < 100_000);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn deadline_mid_transient_returns_partial_telemetry() {
    // A zero deadline trips on the very first Newton iteration of the
    // t = 0 op; a short-but-nonzero one trips somewhere mid-integration.
    // Either way the error is typed and carries the effort spent.
    let b = Budget::deadline(Duration::from_micros(200));
    let hb = Arc::new(Heartbeat::new());
    let b = b.with_heartbeat(Arc::clone(&hb));
    let err = budget::with(b, || {
        // Long transient: 10k time constants, far more work than 200 µs.
        transient(&mut rc_lowpass(), 1e-2, &TranOptions::default())
    })
    .unwrap_err();
    match err {
        SpiceError::DeadlineExceeded { limit, time, spent } => {
            assert!(limit.contains("wall-clock deadline"), "{limit}");
            assert!(time >= 0.0);
            // Heartbeat saw the same effort the error reports.
            assert_eq!(hb.snapshot().newton_iterations, spent.newton_iterations);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn newton_cap_bounds_a_transient() {
    let b = Budget::unbounded().with_max_newton(25);
    let err = budget::with(b, || {
        transient(&mut rc_lowpass(), 1e-5, &TranOptions::default())
    })
    .unwrap_err();
    match err {
        SpiceError::DeadlineExceeded { limit, spent, .. } => {
            assert!(limit.contains("newton iteration cap of 25"), "{limit}");
            // The cap is enforced at iteration granularity: one extra
            // iteration at most.
            assert!(spent.newton_iterations <= 26, "{spent:?}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn cancelled_dc_sweep_stops_between_points() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b2 = ckt.node("b");
    let src = ckt.vsource(a, Circuit::GROUND, Waveform::dc(0.0));
    ckt.resistor(a, b2, 1e3);
    ckt.resistor(b2, Circuit::GROUND, 1e3);
    let (b, flag) = Budget::cancellable();
    flag.cancel();
    let err = budget::with(b, || {
        dc_sweep(&mut ckt, src, &[0.0, 0.5, 1.0], &OpOptions::default())
    })
    .unwrap_err();
    assert!(err.is_interrupt(), "{err:?}");
}

#[test]
fn heartbeat_tracks_transient_progress() {
    let hb = Arc::new(Heartbeat::new());
    let b = Budget::unbounded().with_heartbeat(Arc::clone(&hb));
    let res = budget::with(b, || {
        transient(&mut rc_lowpass(), 5e-6, &TranOptions::default())
    });
    assert!(res.is_ok());
    // Progress ticked for the t = 0 op and every accepted step.
    assert!(hb.progress() > 10, "progress = {}", hb.progress());
    assert!(hb.sim_time() > 4.9e-6, "sim_time = {}", hb.sim_time());
}

#[test]
fn unbudgeted_solves_are_unaffected() {
    // Results with and without an unbounded budget installed are bitwise
    // identical — the supervision layer must not perturb the numerics.
    let run = |under_budget: bool| {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-9);
        let solve = |ckt: &mut Circuit| transient(ckt, 5e-6, &TranOptions::default()).unwrap();
        let res = if under_budget {
            budget::with(Budget::unbounded(), || solve(&mut ckt))
        } else {
            solve(&mut ckt)
        };
        let v = res.voltage(out);
        (v.times().to_vec(), v.values().to_vec())
    };
    assert_eq!(run(false), run(true));
}
