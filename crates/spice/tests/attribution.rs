//! Eval/solve attribution counters: `device_eval_ns` and `batched_evals`
//! must be exactly zero on decks without devices (the device section is
//! never entered, so no timestamp is ever taken), nonzero where batched
//! device work actually happens, and pinned off by `scalar_device_eval`
//! and `legacy_linear_algebra` without disturbing the solve counters.

use nemscmos_spice::analysis::op::op;
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::device::{batch_key_word, Device, LoadContext, Solution, BATCH_KEY_SEED};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::profile::{self, SolveProfile};
use nemscmos_spice::stamp::Stamper;
use nemscmos_spice::stats;
use nemscmos_spice::waveform::Waveform;

/// A minimal batchable nonlinear shunt: i = k·v² to ground. Only the key
/// is overridden — the default `batch_scatter` delegates to `load`, which
/// is exactly the degenerate batch member the engine must also handle.
#[derive(Debug)]
struct SquareLaw {
    node: NodeId,
    k: f64,
}

impl Device for SquareLaw {
    fn name(&self) -> &str {
        "squarelaw"
    }
    fn load(&self, x: &Solution<'_>, _ctx: &LoadContext, st: &mut Stamper) {
        let v = x.v(self.node);
        st.nonlinear_current(
            self.node,
            NodeId::GROUND,
            self.k * v * v,
            &[(self.node, 2.0 * self.k * v)],
        );
    }
    fn commit(&mut self, _x: &Solution<'_>, _ctx: &LoadContext) -> bool {
        false
    }
    fn reset_state(&mut self) {}
    fn batch_key(&self) -> Option<u64> {
        Some(batch_key_word(BATCH_KEY_SEED, self.k.to_bits()))
    }
}

/// Driven RC with a square-law shunt: nonlinear, so every Newton
/// iteration runs the device section and a real factorization.
fn device_deck() -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, out, 1e3);
    ckt.capacitor(out, Circuit::GROUND, 1e-9);
    ckt.add_device(SquareLaw { node: out, k: 1e-3 });
    ckt.add_device(SquareLaw { node: out, k: 1e-3 });
    ckt
}

/// Same deck minus the devices: the linear-bypass fast path.
fn linear_deck() -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, out, 1e3);
    ckt.capacitor(out, Circuit::GROUND, 1e-9);
    ckt
}

fn tran_opts() -> TranOptions {
    TranOptions {
        dt_init: Some(2e-9),
        dt_max: Some(10e-9),
        ..Default::default()
    }
}

#[test]
fn device_decks_attribute_both_eval_and_solve_time() {
    let mut ckt = device_deck();
    let (_, spent) = stats::measure(|| transient(&mut ckt, 1e-6, &tran_opts()).unwrap());
    assert!(spent.newton_iterations > 0);
    // Hundreds of iterations, each bracketed by two monotonic-clock reads
    // per section: zero accumulated time would mean the bracket vanished.
    assert!(
        spent.device_eval_ns > 0,
        "eval time: {}",
        spent.device_eval_ns
    );
    assert!(
        spent.linear_solve_ns > 0,
        "solve time: {}",
        spent.linear_solve_ns
    );
    // Both instances share a batch key, so every assembly goes batched:
    // at least one batched pass per Newton iteration.
    assert!(
        spent.batched_evals >= spent.newton_iterations,
        "batched {} vs newton {}",
        spent.batched_evals,
        spent.newton_iterations
    );
}

#[test]
fn linear_decks_record_zero_device_attribution() {
    let mut ckt = linear_deck();
    let (_, spent) = stats::measure(|| transient(&mut ckt, 1e-6, &tran_opts()).unwrap());
    assert!(spent.newton_iterations > 0);
    assert_eq!(spent.device_eval_ns, 0, "no devices, no eval time");
    assert_eq!(spent.batched_evals, 0);
    // The factorization may be bypassed, but the back-substitution still
    // runs inside the timed solve bracket every iteration.
    assert!(
        spent.linear_solve_ns > 0,
        "solve time: {}",
        spent.linear_solve_ns
    );
    assert!(spent.bypass_solves > 0, "linear bypass engaged");
}

#[test]
fn scalar_pin_disables_batching_but_not_attribution() {
    let mut ckt = device_deck();
    let pin = SolveProfile {
        scalar_device_eval: true,
        ..Default::default()
    };
    let (_, spent) = profile::with(pin, || {
        stats::measure(|| transient(&mut ckt, 1e-6, &tran_opts()).unwrap())
    });
    assert!(spent.newton_iterations > 0);
    assert_eq!(spent.batched_evals, 0, "scalar pin must suppress batching");
    // The eval/solve brackets time the section regardless of which path
    // runs inside it.
    assert!(spent.device_eval_ns > 0);
    assert!(spent.linear_solve_ns > 0);
}

#[test]
fn legacy_pin_also_runs_scalar_eval_when_asked() {
    // The perfbase baseline pins both flags; the pair must compose.
    let mut ckt = device_deck();
    let pin = SolveProfile {
        legacy_linear_algebra: true,
        scalar_device_eval: true,
        ..Default::default()
    };
    let (res, spent) = profile::with(pin, || {
        stats::measure(|| transient(&mut ckt, 1e-6, &tran_opts()).unwrap())
    });
    assert!(res.num_points() > 10);
    assert_eq!(spent.batched_evals, 0);
    assert_eq!(
        spent.slot_cache_hits, 0,
        "legacy pin disables the fast path"
    );
    assert_eq!(spent.symbolic_reuses, 0);
    assert!(spent.device_eval_ns > 0);
}

#[test]
fn op_on_a_device_deck_batches_every_assembly() {
    let mut ckt = device_deck();
    let (_, spent) = stats::measure(|| op(&mut ckt).unwrap());
    assert!(spent.newton_iterations > 0);
    assert!(
        spent.batched_evals >= spent.newton_iterations,
        "batched {} vs newton {}",
        spent.batched_evals,
        spent.newton_iterations
    );
    assert!(spent.device_eval_ns > 0, "op evals must be timed");
}
