//! Netlist frontend regressions: error paths must name the offending
//! card, and `.MODEL` aliases must resolve through the device factory
//! with instance parameters overriding the card's defaults.

use std::collections::HashMap;

use nemscmos_spice::analysis::op::op;
use nemscmos_spice::device::{Device, LoadContext, Solution};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::netlist::{parse_deck, DeviceFactory, NoDevices};
use nemscmos_spice::stamp::Stamper;

/// A one-terminal linear shunt, so parameter plumbing is observable as a
/// plain voltage-divider ratio.
#[derive(Debug)]
struct Shunt {
    node: NodeId,
    g: f64,
}

impl Device for Shunt {
    fn name(&self) -> &str {
        "shunt"
    }
    fn load(&self, x: &Solution<'_>, _ctx: &LoadContext, st: &mut Stamper) {
        st.conductance(self.node, NodeId::GROUND, self.g, x.v(self.node), 0.0);
    }
    fn commit(&mut self, _x: &Solution<'_>, _ctx: &LoadContext) -> bool {
        false
    }
    fn reset_state(&mut self) {}
}

/// Knows exactly one model, `shunt`, with a `G` parameter.
struct ShuntFactory;

impl DeviceFactory for ShuntFactory {
    fn make(
        &self,
        _name: &str,
        model: &str,
        nodes: &[NodeId],
        params: &HashMap<String, f64>,
    ) -> Option<Box<dyn Device>> {
        if model != "shunt" || nodes.is_empty() {
            return None;
        }
        Some(Box::new(Shunt {
            node: nodes[0],
            g: params.get("G").copied().unwrap_or(1e-3),
        }))
    }
}

fn out_voltage(deck: &str) -> f64 {
    let parsed = parse_deck(deck, &ShuntFactory).unwrap();
    let out = parsed.nodes["out"];
    let mut ckt = parsed.circuit;
    op(&mut ckt).unwrap().voltage(out)
}

#[test]
fn model_alias_resolves_through_the_factory() {
    // 1 V through 1 kΩ into a 2 mS shunt: v(out) = 1m / 3m = 1/3.
    let v = out_voltage(
        "\
.model leaky shunt G=2m
V1 in 0 DC 1
R1 in out 1k
M1 out leaky
.op
",
    );
    assert!((v - 1.0 / 3.0).abs() < 1e-9, "v(out) = {v}");
}

#[test]
fn instance_parameters_override_the_model_card() {
    // The instance's G=5m beats the card's G=2m: v(out) = 1m / 6m.
    let v = out_voltage(
        "\
.model leaky shunt G=2m
V1 in 0 DC 1
R1 in out 1k
M1 out leaky G=5m
.op
",
    );
    assert!((v - 1.0 / 6.0).abs() < 1e-9, "v(out) = {v}");
}

#[test]
fn model_cards_may_follow_their_instances_and_chain() {
    // Forward reference plus a two-level alias chain; the outer card's
    // G=4m overrides the inner card's G=2m.
    let v = out_voltage(
        "\
V1 in 0 DC 1
M1 out hot
.model hot leaky G=4m
.model leaky shunt G=2m
R1 in out 1k
.op
",
    );
    assert!((v - 1.0 / 5.0).abs() < 1e-9, "v(out) = {v}");
}

#[test]
fn duplicate_model_names_are_rejected() {
    let err = parse_deck(
        "\
.model leaky shunt G=2m
.model leaky shunt G=9m
V1 in 0 DC 1
.op
",
        &ShuntFactory,
    )
    .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    assert!(err.to_string().contains("leaky"), "{err}");
}

#[test]
fn malformed_model_cards_are_rejected() {
    let err = parse_deck(".model onlyname\n.op\n", &NoDevices).unwrap_err();
    assert!(err.to_string().contains(".MODEL name base"), "{err}");
    let err = parse_deck(".model a shunt G-3\n.op\n", &NoDevices).unwrap_err();
    assert!(err.to_string().contains("KEY=value"), "{err}");
    let recursive = ".model a b\n.model b a\nM1 out a\nV1 out 0 DC 1\n.op\n";
    let err = parse_deck(recursive, &ShuntFactory).unwrap_err();
    assert!(err.to_string().contains("depth"), "{err}");
}

#[test]
fn alias_to_unknown_base_names_both_models() {
    let err = parse_deck(
        ".model ghost nosuch\nV1 out 0 DC 1\nM1 out ghost\n.op\n",
        &ShuntFactory,
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("nosuch"), "{msg}");
    assert!(msg.contains("ghost"), "{msg}");
}

#[test]
fn unknown_element_type_is_rejected_with_the_line() {
    let err = parse_deck("Q1 c b e npn\n.op\n", &NoDevices).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Q1"), "{msg}");
    assert!(msg.contains("unknown element"), "{msg}");
}

#[test]
fn element_arity_errors_name_the_expected_shape() {
    let err = parse_deck("R1 a 0\n.op\n", &NoDevices).unwrap_err();
    assert!(err.to_string().contains("name n1 n2 value"), "{err}");
    let err = parse_deck("V1 a\n.op\n", &NoDevices).unwrap_err();
    assert!(err.to_string().contains("n+ n- waveform"), "{err}");
    let err = parse_deck("E1 a 0 b\n.op\n", &NoDevices).unwrap_err();
    assert!(err.to_string().contains("ctl"), "{err}");
    let err = parse_deck("M1 leaky\n.op\n", &NoDevices).unwrap_err();
    assert!(err.to_string().contains("nodes and a model name"), "{err}");
}
