//! End-to-end behavior of the numerical health guards and the
//! fault-injection framework: every injected fault must surface as a
//! typed diagnostic (never a panic), and a fault that cannot corrupt the
//! residual must never produce a silently-wrong number.

use nemscmos_spice::analysis::op::{op, op_with, OpOptions};
use nemscmos_spice::analysis::tran::{transient, TranOptions};
use nemscmos_spice::circuit::Circuit;
use nemscmos_spice::device::{Device, LoadContext, Solution};
use nemscmos_spice::element::NodeId;
use nemscmos_spice::faults::{self, Disarm, FaultKind, FaultPlan};
use nemscmos_spice::guard::{self, GuardConfig};
use nemscmos_spice::stamp::Stamper;
use nemscmos_spice::waveform::Waveform;
use nemscmos_spice::SpiceError;

/// 2 V through 1 kΩ / 3 kΩ: v(b) = 1.5 V.
fn divider() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
    ckt.resistor(a, b, 1e3);
    ckt.resistor(b, Circuit::GROUND, 3e3);
    (ckt, b)
}

fn rc_lowpass() -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
    ckt.resistor(vin, out, 1e3);
    ckt.capacitor(out, Circuit::GROUND, 1e-9);
    ckt
}

#[test]
fn nan_fault_surfaces_as_typed_nonfinite() {
    let plan = FaultPlan::immediate(FaultKind::NanResidual, Disarm::Never, 11);
    let (mut ckt, _) = divider();
    let err = faults::with(plan, || op(&mut ckt).unwrap_err());
    match err {
        SpiceError::NonFinite {
            device,
            node,
            stage,
            ..
        } => {
            assert_eq!(device, "fault injection");
            assert_eq!(stage, "residual");
            assert!(!node.is_empty());
        }
        other => panic!("expected NonFinite, got: {other}"),
    }
}

#[test]
fn singular_fault_surfaces_with_unknown_attribution() {
    let plan = FaultPlan::immediate(FaultKind::SingularPivot, Disarm::Never, 7);
    let (mut ckt, _) = divider();
    let err = faults::with(plan, || op(&mut ckt).unwrap_err());
    match err {
        SpiceError::SingularSystem { unknown, .. } => {
            assert!(
                unknown.contains("node") || unknown.contains("branch"),
                "unknown should be named: {unknown}"
            );
        }
        other => panic!("expected SingularSystem, got: {other}"),
    }
}

#[test]
fn mild_jacobian_perturbation_cannot_corrupt_the_answer() {
    // The perturbation leaves the residual exact, so a converged solve
    // still satisfies the true circuit equations.
    let plan = FaultPlan::immediate(
        FaultKind::JacobianPerturb { relative: 1e-3 },
        Disarm::Never,
        42,
    );
    let (mut ckt, b) = divider();
    let res = faults::with(plan, || op(&mut ckt)).expect("mild perturbation converges");
    assert!((res.voltage(b) - 1.5).abs() < 1e-6);
}

#[test]
fn severe_jacobian_perturbation_fails_typed_or_lands_true() {
    // A 1000x random Jacobian corruption normally destroys convergence;
    // the contract is "typed failure or the true answer", never a wrong
    // number reported as success.
    let plan = FaultPlan::immediate(
        FaultKind::JacobianPerturb { relative: 1e3 },
        Disarm::Never,
        99,
    );
    let (mut ckt, b) = divider();
    match faults::with(plan, || op(&mut ckt)) {
        Ok(res) => assert!((res.voltage(b) - 1.5).abs() < 1e-6),
        Err(
            SpiceError::NoConvergence { .. }
            | SpiceError::SingularSystem { .. }
            | SpiceError::NonFinite { .. },
        ) => {}
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

#[test]
fn timestep_storm_is_ridden_out_when_it_disarms() {
    let plan = FaultPlan::immediate(FaultKind::TimestepStorm, Disarm::AfterTriggers(2), 3);
    let mut ckt = rc_lowpass();
    let res = faults::with(plan, || {
        let res = transient(&mut ckt, 10e-6, &TranOptions::default());
        assert_eq!(faults::triggers_fired(), 2);
        res
    })
    .expect("storm disarms after two rejections");
    // Fully charged after 10 time constants despite the two rejections.
    let v_end = res.voltage(ckt.find_node("out").unwrap()).last_value();
    assert!((v_end - 1.0).abs() < 1e-3);
}

#[test]
fn endless_timestep_storm_underflows_with_typed_diagnostic() {
    let plan = FaultPlan::immediate(FaultKind::TimestepStorm, Disarm::Never, 3);
    let mut ckt = rc_lowpass();
    let err = faults::with(plan, || {
        transient(&mut ckt, 1e-6, &TranOptions::default()).unwrap_err()
    });
    match err {
        SpiceError::NoConvergence { detail, .. } => {
            assert!(detail.contains("underflow"), "detail: {detail}");
        }
        other => panic!("expected NoConvergence, got: {other}"),
    }
}

#[test]
fn unfaulted_solves_are_bitwise_identical_under_an_inactive_plan_scope() {
    let (mut c1, b1) = divider();
    let r1 = op(&mut c1).unwrap();
    let (mut c2, b2) = divider();
    let r2 = faults::with_opt(None, || op(&mut c2)).unwrap();
    assert_eq!(r1.voltage(b1).to_bits(), r2.voltage(b2).to_bits());
}

/// A deliberately buggy device: it reports a huge (wrong) Jacobian entry
/// for a modest residual current, so Newton's `‖Δx‖` test "converges"
/// immediately while KCL is badly violated — exactly the stiff-system
/// trap the post-solve audit exists to catch.
#[derive(Debug)]
struct StiffLeak {
    node: NodeId,
}

impl Device for StiffLeak {
    fn name(&self) -> &str {
        "stiffleak"
    }
    fn load(&self, _x: &Solution<'_>, _ctx: &LoadContext, st: &mut Stamper) {
        st.f_node(self.node, 1e-3);
        st.j_node(self.node, self.node, 1e9);
    }
    fn commit(&mut self, _x: &Solution<'_>, _ctx: &LoadContext) -> bool {
        false
    }
    fn reset_state(&mut self) {}
}

#[test]
fn kcl_audit_catches_false_convergence() {
    let (mut ckt, b) = divider();
    ckt.add_device(StiffLeak { node: b });

    // Without the audit the solve "succeeds" — with node b pinned far
    // from its true 1.5 V because the phantom 1e9 S Jacobian entry
    // swallows every correction. A silently-wrong number.
    let silent = op(&mut ckt).expect("dx-based convergence is fooled");
    assert!((silent.voltage(b) - 1.5).abs() > 0.5);

    let err = guard::with(GuardConfig::kcl(1e-9), || op(&mut ckt)).unwrap_err();
    match err {
        SpiceError::KclViolation { node, residual, .. } => {
            assert!(node.contains('b'), "worst node: {node}");
            assert!(residual > 1e-4, "residual: {residual}");
        }
        other => panic!("expected KclViolation, got: {other}"),
    }
}

#[test]
fn kcl_audit_passes_a_healthy_circuit() {
    let (mut ckt, b) = divider();
    let res = guard::with(GuardConfig::kcl(1e-6), || op(&mut ckt)).expect("audit passes");
    assert!((res.voltage(b) - 1.5).abs() < 1e-6);
}

#[test]
fn kcl_audit_passes_a_healthy_transient() {
    let mut ckt = rc_lowpass();
    guard::with(GuardConfig::kcl(1e-3), || {
        transient(&mut ckt, 1e-6, &TranOptions::default())
    })
    .expect("transient audit passes");
}

#[test]
fn floating_node_singular_error_names_the_node() {
    // With gmin disabled, a DC-floating capacitor node has an empty
    // matrix column; the error must name it.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let fl = ckt.node("float");
    ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
    ckt.resistor(a, Circuit::GROUND, 1e3);
    ckt.capacitor(a, fl, 1e-12);
    let opts = OpOptions {
        gmin: 0.0,
        ..Default::default()
    };
    let err = op_with(&mut ckt, &opts).unwrap_err();
    match err {
        SpiceError::SingularSystem { unknown, .. } => {
            assert!(unknown.contains("float"), "unknown: {unknown}");
        }
        other => panic!("expected SingularSystem, got: {other}"),
    }
}
