//! Independent-source waveforms (DC, PULSE, PWL, SIN, EXP).

use nemscmos_numeric::interp::PiecewiseLinear;

use crate::{Result, SpiceError};

/// A time-dependent source value, mirroring the classic SPICE source kinds.
///
/// # Example
///
/// ```
/// use nemscmos_spice::waveform::Waveform;
///
/// let clk = Waveform::pulse(0.0, 1.2, 1e-9, 50e-12, 50e-12, 2e-9, 4e-9);
/// assert_eq!(clk.eval(0.0), 0.0);
/// assert!((clk.eval(1.5e-9) - 1.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// A constant value.
    Dc(f64),
    /// Periodic trapezoidal pulse (SPICE `PULSE`): `v1` → `v2`.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time.
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Time at `v2` per period.
        width: f64,
        /// Pulse period.
        period: f64,
    },
    /// Piecewise-linear waveform, clamped outside its breakpoints.
    Pwl(PiecewiseLinear),
    /// Sinusoid `offset + ampl·sin(2π·freq·(t − delay))` for `t ≥ delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay.
        delay: f64,
    },
    /// SPICE `EXP` source: exponential rise from `v1` toward `v2`
    /// starting at `td1` with time constant `tau1`, then exponential
    /// return toward `v1` starting at `td2` with `tau2`.
    Exp {
        /// Initial value.
        v1: f64,
        /// Pulsed value approached during the rise.
        v2: f64,
        /// Rise start time.
        td1: f64,
        /// Rise time constant.
        tau1: f64,
        /// Fall start time (≥ `td1`).
        td2: f64,
        /// Fall time constant.
        tau2: f64,
    },
}

impl Waveform {
    /// A constant (DC) waveform.
    pub fn dc(value: f64) -> Waveform {
        Waveform::Dc(value)
    }

    /// A periodic pulse from `v1` to `v2`.
    ///
    /// # Panics
    ///
    /// Panics if `rise`, `fall` or `width` is negative, or if the period is
    /// not long enough to contain `rise + width + fall`.
    pub fn pulse(
        v1: f64,
        v2: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Waveform {
        assert!(
            rise >= 0.0 && fall >= 0.0 && width >= 0.0,
            "negative pulse timing"
        );
        assert!(
            period >= rise + width + fall,
            "pulse period {period} too short for rise+width+fall"
        );
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// A piecewise-linear waveform.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidCircuit`] if the points are not strictly
    /// increasing in time.
    pub fn pwl(points: Vec<(f64, f64)>) -> Result<Waveform> {
        PiecewiseLinear::new(points)
            .map(Waveform::Pwl)
            .map_err(|e| SpiceError::InvalidCircuit(format!("bad PWL source: {e}")))
    }

    /// A SPICE `EXP` source.
    ///
    /// # Panics
    ///
    /// Panics if a time constant is not strictly positive or the fall
    /// starts before the rise.
    pub fn exp(v1: f64, v2: f64, td1: f64, tau1: f64, td2: f64, tau2: f64) -> Waveform {
        assert!(
            tau1 > 0.0 && tau2 > 0.0,
            "EXP time constants must be positive"
        );
        assert!(td2 >= td1, "EXP fall must start at or after the rise");
        Waveform::Exp {
            v1,
            v2,
            td1,
            tau1,
            td2,
            tau2,
        }
    }

    /// A one-shot step from `v1` to `v2` starting at `t0`, rising over `tr`.
    ///
    /// # Panics
    ///
    /// Panics if `tr <= 0`.
    pub fn step(v1: f64, v2: f64, t0: f64, tr: f64) -> Waveform {
        assert!(tr > 0.0, "step rise time must be positive");
        Waveform::Pwl(
            PiecewiseLinear::new(vec![(t0, v1), (t0 + tr, v2)])
                .expect("step breakpoints are strictly increasing"),
        )
    }

    /// Evaluates the waveform at time `t` (clamped for `t < 0`).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let tp = (t - delay) % period;
                if tp < *rise {
                    if *rise == 0.0 {
                        *v2
                    } else {
                        v1 + (v2 - v1) * tp / rise
                    }
                } else if tp < rise + width {
                    *v2
                } else if tp < rise + width + fall {
                    if *fall == 0.0 {
                        *v1
                    } else {
                        v2 + (v1 - v2) * (tp - rise - width) / fall
                    }
                } else {
                    *v1
                }
            }
            Waveform::Pwl(pwl) => pwl.eval(t),
            Waveform::Sin {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            Waveform::Exp {
                v1,
                v2,
                td1,
                tau1,
                td2,
                tau2,
            } => {
                // Standard SPICE additive form: the rise term persists and
                // the fall term cancels it back toward v1.
                let mut v = *v1;
                if t > *td1 {
                    v += (v2 - v1) * (1.0 - (-(t - td1) / tau1).exp());
                }
                if t > *td2 {
                    v += (v1 - v2) * (1.0 - (-(t - td2) / tau2).exp());
                }
                v
            }
        }
    }

    /// True when every numeric parameter of the waveform is finite. Used
    /// by [`Circuit::validate`](crate::circuit::Circuit::validate) to
    /// reject poisoned sources before they reach assembly.
    pub fn is_finite(&self) -> bool {
        match self {
            Waveform::Dc(v) => v.is_finite(),
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => [v1, v2, delay, rise, fall, width, period]
                .iter()
                .all(|p| p.is_finite()),
            Waveform::Pwl(pwl) => pwl
                .points()
                .iter()
                .all(|&(t, v)| t.is_finite() && v.is_finite()),
            Waveform::Sin {
                offset,
                ampl,
                freq,
                delay,
            } => [offset, ampl, freq, delay].iter().all(|p| p.is_finite()),
            Waveform::Exp {
                v1,
                v2,
                td1,
                tau1,
                td2,
                tau2,
            } => [v1, v2, td1, tau1, td2, tau2].iter().all(|p| p.is_finite()),
        }
    }

    /// The DC (t = 0⁻) value used for operating-point analysis.
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v1, .. } => *v1,
            Waveform::Pwl(pwl) => pwl.points()[0].1,
            Waveform::Sin { offset, .. } => *offset,
            Waveform::Exp { v1, .. } => *v1,
        }
    }

    /// Appends this source's timing discontinuities within `[0, tstop]` to
    /// `out`; the transient analysis forces steps onto these breakpoints.
    pub fn breakpoints(&self, tstop: f64, out: &mut Vec<f64>) {
        match self {
            Waveform::Dc(_) => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let mut t0 = *delay;
                // Cap the number of emitted periods to keep pathological
                // tiny-period sources from exploding the breakpoint list.
                let mut periods = 0;
                while t0 <= tstop && periods < 10_000 {
                    for edge in [0.0, *rise, rise + width, rise + width + fall] {
                        let t = t0 + edge;
                        if t <= tstop {
                            out.push(t);
                        }
                    }
                    t0 += period;
                    periods += 1;
                }
            }
            Waveform::Pwl(pwl) => {
                out.extend(
                    pwl.points()
                        .iter()
                        .map(|&(t, _)| t)
                        .filter(|&t| (0.0..=tstop).contains(&t)),
                );
            }
            Waveform::Sin { delay, .. } => {
                if (0.0..=tstop).contains(delay) {
                    out.push(*delay);
                }
            }
            Waveform::Exp { td1, td2, .. } => {
                for t in [*td1, *td2] {
                    if (0.0..=tstop).contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(3.3);
        assert_eq!(w.eval(-1.0), 3.3);
        assert_eq!(w.eval(1e9), 3.3);
        assert_eq!(w.dc_value(), 3.3);
    }

    #[test]
    fn pulse_edges_and_periodicity() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 0.1, 0.2, 0.5, 2.0);
        assert_eq!(w.eval(0.5), 0.0); // before delay
        assert!((w.eval(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(1.3), 1.0); // plateau
        assert!((w.eval(1.7) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(1.9), 0.0); // back to v1
        assert!((w.eval(3.05) - 0.5).abs() < 1e-12); // next period
    }

    #[test]
    fn pulse_with_zero_edges() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 2.0);
        assert_eq!(w.eval(0.5), 1.0);
        assert_eq!(w.eval(1.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn pulse_rejects_overlong_content() {
        let _ = Waveform::pulse(0.0, 1.0, 0.0, 0.5, 0.5, 0.5, 1.0);
    }

    #[test]
    fn pwl_clamps_and_interpolates() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0)]).unwrap();
        assert_eq!(w.eval(-1.0), 0.0);
        assert_eq!(w.eval(0.5), 1.0);
        assert_eq!(w.eval(2.0), 2.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn pwl_rejects_bad_points() {
        assert!(Waveform::pwl(vec![(1.0, 0.0), (0.5, 1.0)]).is_err());
    }

    #[test]
    fn step_transitions_once() {
        let w = Waveform::step(0.0, 1.2, 1e-9, 50e-12);
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(2e-9), 1.2);
    }

    #[test]
    fn sin_starts_after_delay() {
        let w = Waveform::Sin {
            offset: 1.0,
            ampl: 0.5,
            freq: 1.0,
            delay: 1.0,
        };
        assert_eq!(w.eval(0.5), 1.0);
        assert!((w.eval(1.25) - 1.5).abs() < 1e-12);
        assert_eq!(w.dc_value(), 1.0);
    }

    #[test]
    fn exp_source_rises_and_falls() {
        let w = Waveform::exp(0.0, 1.0, 1.0, 0.5, 3.0, 0.25);
        assert_eq!(w.eval(0.5), 0.0);
        assert_eq!(w.dc_value(), 0.0);
        // One tau into the rise: 1 − e^{−1}.
        let one_tau = w.eval(1.5);
        assert!((one_tau - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // Long after the rise, before the fall: saturated near v2.
        assert!(w.eval(2.9) > 0.95);
        // Long after the fall: back near v1.
        assert!(w.eval(10.0) < 0.01);
        let mut bps = Vec::new();
        w.breakpoints(5.0, &mut bps);
        assert!(bps.contains(&1.0) && bps.contains(&3.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_bad_tau() {
        let _ = Waveform::exp(0.0, 1.0, 0.0, 0.0, 1.0, 1.0);
    }

    #[test]
    fn breakpoints_cover_pulse_edges() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.1, 0.1, 0.3, 1.0);
        let mut bps = Vec::new();
        w.breakpoints(1.0, &mut bps);
        for expect in [0.0, 0.1, 0.4, 0.5, 1.0] {
            assert!(
                bps.iter().any(|&t| (t - expect).abs() < 1e-15),
                "missing breakpoint {expect}"
            );
        }
    }

    #[test]
    fn breakpoints_for_dc_are_empty() {
        let mut bps = Vec::new();
        Waveform::dc(1.0).breakpoints(1.0, &mut bps);
        assert!(bps.is_empty());
    }

    #[test]
    fn is_finite_spots_poisoned_parameters() {
        assert!(Waveform::dc(1.0).is_finite());
        assert!(!Waveform::dc(f64::NAN).is_finite());
        assert!(Waveform::pulse(0.0, 1.0, 0.0, 0.1, 0.1, 0.3, 1.0).is_finite());
        assert!(!Waveform::Pulse {
            v1: 0.0,
            v2: f64::INFINITY,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        }
        .is_finite());
        assert!(Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0)])
            .unwrap()
            .is_finite());
        assert!(!Waveform::Sin {
            offset: 0.0,
            ampl: f64::NAN,
            freq: 1.0,
            delay: 0.0,
        }
        .is_finite());
        assert!(Waveform::exp(0.0, 1.0, 0.0, 1.0, 2.0, 1.0).is_finite());
    }
}
