//! Value Change Dump (VCD) export of transient results.
//!
//! Writes IEEE-1364 VCD with `real` variables, one per probed node, so
//! waveforms can be inspected in GTKWave or any other VCD viewer:
//!
//! ```text
//! $timescale 1fs $end
//! $var real 64 ! v(out) $end
//! ...
//! #1500000
//! r1.199 !
//! ```

use std::io::Write;

use crate::circuit::Circuit;
use crate::element::NodeId;
use crate::result::TranResult;
use crate::{Result, SpiceError};

/// Timescale used in the dump: femtoseconds, fine enough for ps-scale
/// digital edges.
const FEMTOSECONDS_PER_SECOND: f64 = 1e15;

/// Writes the voltage traces of `nodes` (with their names from `ckt`) as
/// a VCD document.
///
/// # Errors
///
/// Returns [`SpiceError::UnknownProbe`] if `nodes` is empty and wraps I/O
/// failures from the writer in [`SpiceError::InvalidCircuit`].
pub fn write_vcd<W: Write>(
    out: &mut W,
    ckt: &Circuit,
    res: &TranResult,
    nodes: &[NodeId],
) -> Result<()> {
    if nodes.is_empty() {
        return Err(SpiceError::UnknownProbe(
            "VCD export needs at least one node".into(),
        ));
    }
    let io_err = |e: std::io::Error| SpiceError::InvalidCircuit(format!("VCD write failed: {e}"));

    // Identifier codes: printable ASCII starting at '!'.
    let code = |k: usize| -> String {
        let mut k = k;
        let mut s = String::new();
        loop {
            s.push((b'!' + (k % 94) as u8) as char);
            k /= 94;
            if k == 0 {
                break;
            }
        }
        s
    };

    writeln!(out, "$date nemscmos transient $end").map_err(io_err)?;
    writeln!(out, "$version nemscmos-spice $end").map_err(io_err)?;
    writeln!(out, "$timescale 1 fs $end").map_err(io_err)?;
    writeln!(out, "$scope module circuit $end").map_err(io_err)?;
    for (k, &n) in nodes.iter().enumerate() {
        writeln!(out, "$var real 64 {} v({}) $end", code(k), ckt.node_name(n)).map_err(io_err)?;
    }
    writeln!(out, "$upscope $end").map_err(io_err)?;
    writeln!(out, "$enddefinitions $end").map_err(io_err)?;

    let traces: Vec<_> = nodes.iter().map(|&n| res.voltage(n)).collect();
    let mut last: Vec<Option<f64>> = vec![None; nodes.len()];
    for (idx, &t) in res.times().iter().enumerate() {
        let stamp = (t * FEMTOSECONDS_PER_SECOND).round() as u64;
        let mut wrote_stamp = false;
        for (k, trace) in traces.iter().enumerate() {
            let v = trace.values()[idx];
            // Emit only on change (VCD is a change dump).
            if last[k].is_none_or(|prev| prev != v) {
                if !wrote_stamp {
                    writeln!(out, "#{stamp}").map_err(io_err)?;
                    wrote_stamp = true;
                }
                writeln!(out, "r{v:.6e} {}", code(k)).map_err(io_err)?;
                last[k] = Some(v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::tran::{transient, TranOptions};
    use crate::waveform::Waveform;

    fn rc_result() -> (Circuit, TranResult, NodeId, NodeId) {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.vsource(a, Circuit::GROUND, Waveform::step(0.0, 1.0, 1e-9, 0.1e-9));
        ckt.resistor(a, b, 1e3);
        ckt.capacitor(b, Circuit::GROUND, 1e-12);
        let res = transient(&mut ckt, 5e-9, &TranOptions::default()).unwrap();
        (ckt, res, a, b)
    }

    #[test]
    fn vcd_has_header_and_changes() {
        let (ckt, res, a, b) = rc_result();
        let mut buf = Vec::new();
        write_vcd(&mut buf, &ckt, &res, &[a, b]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$timescale 1 fs $end"));
        assert!(text.contains("v(in)"));
        assert!(text.contains("v(out)"));
        assert!(text.contains("$enddefinitions"));
        // Time stamps are monotone.
        let stamps: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(stamps.len() > 10);
        assert!(stamps.windows(2).all(|w| w[1] > w[0]));
        // Values appear as real changes.
        assert!(text.lines().any(|l| l.starts_with('r')));
    }

    #[test]
    fn empty_probe_list_rejected() {
        let (ckt, res, ..) = rc_result();
        let mut buf = Vec::new();
        assert!(write_vcd(&mut buf, &ckt, &res, &[]).is_err());
    }

    #[test]
    fn identifier_codes_are_unique_for_many_nodes() {
        // Exercise the multi-character code path indirectly: 100 codes.
        let code = |k: usize| -> String {
            let mut k = k;
            let mut s = String::new();
            loop {
                s.push((b'!' + (k % 94) as u8) as char);
                k /= 94;
                if k == 0 {
                    break;
                }
            }
            s
        };
        let mut seen = std::collections::HashSet::new();
        for k in 0..200 {
            assert!(seen.insert(code(k)), "duplicate code at {k}");
        }
    }
}
