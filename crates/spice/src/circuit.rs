//! Netlist construction.

use std::collections::HashMap;

use crate::device::{Device, DeviceId};
use crate::element::{Element, ElementId, NodeId, SourceRef};
use crate::waveform::Waveform;
use crate::{Result, SpiceError};

/// Partition of a circuit's devices into homogeneous evaluation batches,
/// computed once at layout freeze from [`Device::batch_key`].
///
/// Batches are ordered by first appearance of their key and lanes within
/// a batch follow ascending device index, so the partition — and with it
/// the gather/eval order — is a deterministic function of the netlist.
#[derive(Debug, Clone)]
pub(crate) struct BatchPlan {
    /// Device indices of each batch, ascending within a batch.
    pub batches: Vec<Vec<usize>>,
    /// For each device index: `Some((batch, lane))` when batched, `None`
    /// for devices that always load through scalar dispatch.
    pub membership: Vec<Option<(usize, usize)>>,
}

/// A circuit netlist: named nodes, linear elements, and nonlinear devices.
///
/// # Example
///
/// ```
/// use nemscmos_spice::circuit::Circuit;
/// use nemscmos_spice::waveform::Waveform;
///
/// let mut ckt = Circuit::new();
/// let vdd = ckt.node("vdd");
/// let out = ckt.node("out");
/// ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.2));
/// ckt.resistor(vdd, out, 10e3);
/// ckt.resistor(out, Circuit::GROUND, 10e3);
/// assert_eq!(ckt.num_nodes(), 3); // ground + 2
/// ```
#[derive(Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    nodes_by_name: HashMap<String, NodeId>,
    elements: Vec<Element>,
    devices: Vec<Box<dyn Device>>,
    num_branches: usize,
    internal_unknowns: usize,
    layout_final: bool,
    batch_plan: Option<BatchPlan>,
    ics: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// The global ground node.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Circuit {
        let mut ckt = Circuit {
            node_names: vec!["0".to_string()],
            nodes_by_name: HashMap::new(),
            elements: Vec::new(),
            devices: Vec::new(),
            num_branches: 0,
            internal_unknowns: 0,
            layout_final: false,
            batch_plan: None,
            ics: Vec::new(),
        };
        ckt.nodes_by_name.insert("0".to_string(), NodeId::GROUND);
        ckt.nodes_by_name.insert("gnd".to_string(), NodeId::GROUND);
        ckt
    }

    /// Returns the node with the given name, creating it if needed.
    /// The names `"0"` and `"gnd"` always refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.nodes_by_name.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.nodes_by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes_by_name.get(name).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.index()]
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of node-voltage unknowns (nodes excluding ground).
    pub fn num_node_unknowns(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Number of branch-current unknowns.
    pub fn num_branches(&self) -> usize {
        self.num_branches
    }

    /// Total number of MNA unknowns (finalizes the layout on first call).
    pub fn num_unknowns(&mut self) -> usize {
        self.finalize_layout();
        self.num_node_unknowns() + self.num_branches + self.internal_unknowns
    }

    /// Global index of the first branch unknown.
    pub fn branch_base(&self) -> usize {
        self.num_node_unknowns()
    }

    /// Assigns internal-unknown indices to devices. Idempotent.
    pub(crate) fn finalize_layout(&mut self) {
        if self.layout_final {
            return;
        }
        let mut base = self.num_node_unknowns() + self.num_branches;
        for dev in &mut self.devices {
            let n = dev.num_internal();
            if n > 0 {
                dev.set_internal_base(base);
                base += n;
            }
        }
        self.internal_unknowns = base - self.num_node_unknowns() - self.num_branches;
        self.batch_plan = Self::build_batch_plan(&self.devices);
        self.layout_final = true;
    }

    /// Groups devices with equal [`Device::batch_key`]s into evaluation
    /// batches; `None` when no device is batchable, which keeps scalar
    /// circuits on the verbatim one-at-a-time load loop.
    fn build_batch_plan(devices: &[Box<dyn Device>]) -> Option<BatchPlan> {
        let mut by_key: HashMap<u64, usize> = HashMap::new();
        let mut batches: Vec<Vec<usize>> = Vec::new();
        let mut membership = vec![None; devices.len()];
        for (i, dev) in devices.iter().enumerate() {
            if let Some(key) = dev.batch_key() {
                let b = *by_key.entry(key).or_insert_with(|| {
                    batches.push(Vec::new());
                    batches.len() - 1
                });
                membership[i] = Some((b, batches[b].len()));
                batches[b].push(i);
            }
        }
        if batches.is_empty() {
            None
        } else {
            Some(BatchPlan {
                batches,
                membership,
            })
        }
    }

    /// The batch partition, available once the layout is finalized.
    pub(crate) fn batch_plan(&self) -> Option<&BatchPlan> {
        self.batch_plan.as_ref()
    }

    fn assert_mutable(&self) {
        assert!(
            !self.layout_final,
            "circuit topology is frozen once an analysis has run"
        );
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite, or if the
    /// circuit layout is already frozen by an analysis.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        self.assert_mutable();
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive, got {ohms}"
        );
        self.elements.push(Element::Resistor { a, b, ohms });
        ElementId(self.elements.len() - 1)
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or non-finite, or the layout is frozen.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        self.assert_mutable();
        assert!(
            farads.is_finite() && farads >= 0.0,
            "capacitance must be non-negative, got {farads}"
        );
        self.elements.push(Element::Capacitor { a, b, farads });
        ElementId(self.elements.len() - 1)
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not strictly positive and finite, or the
    /// layout is frozen.
    pub fn inductor(&mut self, a: NodeId, b: NodeId, henries: f64) -> ElementId {
        self.assert_mutable();
        assert!(
            henries.is_finite() && henries > 0.0,
            "inductance must be positive, got {henries}"
        );
        let branch = self.num_branches;
        self.num_branches += 1;
        self.elements.push(Element::Inductor {
            a,
            b,
            henries,
            branch,
        });
        ElementId(self.elements.len() - 1)
    }

    /// Adds an independent voltage source from `p` (+) to `m` (−).
    ///
    /// The returned [`SourceRef`] is used to probe the source current
    /// (e.g. for supply-power measurements) and to set sweep values.
    ///
    /// # Panics
    ///
    /// Panics if the layout is frozen.
    pub fn vsource(&mut self, p: NodeId, m: NodeId, wave: Waveform) -> SourceRef {
        self.assert_mutable();
        let branch = self.num_branches;
        self.num_branches += 1;
        self.elements.push(Element::VSource { p, m, wave, branch });
        SourceRef {
            element: self.elements.len() - 1,
            branch,
        }
    }

    /// Adds an independent current source driving current from `from` to
    /// `to` through the source.
    ///
    /// # Panics
    ///
    /// Panics if the layout is frozen.
    pub fn isource(&mut self, from: NodeId, to: NodeId, wave: Waveform) -> ElementId {
        self.assert_mutable();
        self.elements.push(Element::ISource { from, to, wave });
        ElementId(self.elements.len() - 1)
    }

    /// Adds a voltage-controlled current source
    /// `i = gm (v(cp) − v(cm))` flowing from `op` to `om`.
    ///
    /// # Panics
    ///
    /// Panics if `gm` is non-finite or the layout is frozen.
    pub fn vccs(&mut self, op: NodeId, om: NodeId, cp: NodeId, cm: NodeId, gm: f64) -> ElementId {
        self.assert_mutable();
        assert!(gm.is_finite(), "transconductance must be finite");
        self.elements.push(Element::Vccs { op, om, cp, cm, gm });
        ElementId(self.elements.len() - 1)
    }

    /// Adds a voltage-controlled voltage source
    /// `v(op) − v(om) = gain (v(cp) − v(cm))`.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is non-finite or the layout is frozen.
    pub fn vcvs(&mut self, op: NodeId, om: NodeId, cp: NodeId, cm: NodeId, gain: f64) -> ElementId {
        self.assert_mutable();
        assert!(gain.is_finite(), "gain must be finite");
        let branch = self.num_branches;
        self.num_branches += 1;
        self.elements.push(Element::Vcvs {
            op,
            om,
            cp,
            cm,
            gain,
            branch,
        });
        ElementId(self.elements.len() - 1)
    }

    /// Adds a nonlinear device, transferring ownership to the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the layout is frozen.
    pub fn add_device<D: Device + 'static>(&mut self, device: D) -> DeviceId {
        self.add_boxed_device(Box::new(device))
    }

    /// Adds an already-boxed device (used by the netlist elaborator, whose
    /// device factory returns trait objects).
    ///
    /// # Panics
    ///
    /// Panics if the layout is frozen.
    pub fn add_boxed_device(&mut self, device: Box<dyn Device>) -> DeviceId {
        self.assert_mutable();
        self.devices.push(device);
        DeviceId(self.devices.len() - 1)
    }

    /// Forces node `n` to `volts` during the t = 0 operating point of a
    /// transient analysis (used to bias bistable circuits such as SRAM
    /// cells into a chosen state). Ignored by plain DC analyses.
    pub fn set_ic(&mut self, n: NodeId, volts: f64) {
        self.ics.push((n, volts));
    }

    /// The registered initial conditions.
    pub fn ics(&self) -> &[(NodeId, f64)] {
        &self.ics
    }

    /// Replaces the waveform of a voltage source with a DC value (used by
    /// DC sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] if `src` does not refer to a
    /// voltage source of this circuit.
    pub fn set_vsource_dc(&mut self, src: SourceRef, volts: f64) -> Result<()> {
        match self.elements.get_mut(src.element) {
            Some(Element::VSource { wave, .. }) => {
                *wave = Waveform::dc(volts);
                Ok(())
            }
            _ => Err(SpiceError::UnknownProbe(format!(
                "element {} is not a voltage source",
                src.element
            ))),
        }
    }

    /// Replaces the waveform of a voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] if `src` does not refer to a
    /// voltage source of this circuit.
    pub fn set_vsource_waveform(&mut self, src: SourceRef, new: Waveform) -> Result<()> {
        match self.elements.get_mut(src.element) {
            Some(Element::VSource { wave, .. }) => {
                *wave = new;
                Ok(())
            }
            _ => Err(SpiceError::UnknownProbe(format!(
                "element {} is not a voltage source",
                src.element
            ))),
        }
    }

    /// The linear elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// The nonlinear devices (shared view).
    pub fn devices(&self) -> &[Box<dyn Device>] {
        &self.devices
    }

    /// The nonlinear devices (mutable view, used by analyses to commit
    /// state).
    pub(crate) fn devices_mut(&mut self) -> &mut [Box<dyn Device>] {
        &mut self.devices
    }

    /// Resets all device dynamic state (fresh analysis from power-on).
    pub fn reset_device_state(&mut self) {
        for d in &mut self.devices {
            d.reset_state();
        }
    }

    /// Checks structural validity: every non-ground node must have at
    /// least two element/device connections (no dangling nodes), at least
    /// one element must reference ground, no loop may consist solely of
    /// ideal voltage sources (such a loop makes the MNA matrix singular
    /// or the currents indeterminate), and every element parameter and
    /// source waveform must be finite.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidCircuit`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<()> {
        self.validate_finite()?;
        self.validate_no_vsource_loops()?;
        if self.num_node_unknowns() == 0 {
            return Err(SpiceError::InvalidCircuit(
                "circuit has no nodes besides ground".into(),
            ));
        }
        let mut degree = vec![0usize; self.num_nodes()];
        let mut mark = |n: NodeId| degree[n.index()] += 1;
        for e in &self.elements {
            match *e {
                Element::Resistor { a, b, .. }
                | Element::Capacitor { a, b, .. }
                | Element::Inductor { a, b, .. } => {
                    mark(a);
                    mark(b);
                }
                Element::VSource { p, m, .. } => {
                    mark(p);
                    mark(m);
                }
                Element::ISource { from, to, .. } => {
                    mark(from);
                    mark(to);
                }
                Element::Vccs { op, om, cp, cm, .. } => {
                    mark(op);
                    mark(om);
                    mark(cp);
                    mark(cm);
                }
                Element::Vcvs { op, om, cp, cm, .. } => {
                    mark(op);
                    mark(om);
                    mark(cp);
                    mark(cm);
                }
            }
        }
        // Devices connect their terminals too; we cannot see them through
        // the trait, so device-only nodes are counted via names created by
        // builders. Builders in higher layers always attach at least a
        // parasitic capacitor to device terminals, so a degree-0 node here
        // is a genuine authoring error.
        for (idx, &d) in degree.iter().enumerate().skip(1) {
            if d == 0 && !self.devices.is_empty() {
                // Node may be referenced only by devices; tolerated.
                continue;
            }
            if d == 0 {
                return Err(SpiceError::InvalidCircuit(format!(
                    "node '{}' is dangling (no connections)",
                    self.node_names[idx]
                )));
            }
        }
        if degree[0] == 0 && self.devices.is_empty() {
            return Err(SpiceError::InvalidCircuit(
                "nothing is connected to ground".into(),
            ));
        }
        Ok(())
    }

    /// Rejects non-finite element parameters and source waveforms before
    /// they can poison an assembly. Builder methods assert finiteness at
    /// construction; this re-check catches values smuggled in through
    /// waveform payloads or future construction paths.
    fn validate_finite(&self) -> Result<()> {
        for (idx, e) in self.elements.iter().enumerate() {
            let ok = match e {
                Element::Resistor { ohms, .. } => ohms.is_finite(),
                Element::Capacitor { farads, .. } => farads.is_finite(),
                Element::Inductor { henries, .. } => henries.is_finite(),
                Element::VSource { wave, .. } | Element::ISource { wave, .. } => wave.is_finite(),
                Element::Vccs { gm, .. } => gm.is_finite(),
                Element::Vcvs { gain, .. } => gain.is_finite(),
            };
            if !ok {
                return Err(SpiceError::InvalidCircuit(format!(
                    "element #{idx} has a non-finite parameter or waveform value"
                )));
            }
        }
        for &(node, volts) in &self.ics {
            if !volts.is_finite() {
                return Err(SpiceError::InvalidCircuit(format!(
                    "initial condition on node '{}' is non-finite",
                    self.node_names[node.index()]
                )));
            }
        }
        Ok(())
    }

    /// Rejects loops made purely of ideal voltage sources (independent or
    /// VCVS outputs): their branch currents are indeterminate and the MNA
    /// matrix is singular (or the KCL contradiction unsolvable). Detected
    /// by union-find: each source edge must connect two previously
    /// disconnected components of the source-only subgraph.
    fn validate_no_vsource_loops(&self) -> Result<()> {
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]]; // path halving
                i = parent[i];
            }
            i
        }
        let mut parent: Vec<usize> = (0..self.num_nodes()).collect();
        for e in &self.elements {
            let (a, b, kind) = match *e {
                Element::VSource { p, m, .. } => (p, m, "voltage source"),
                Element::Vcvs { op, om, .. } => (op, om, "vcvs output"),
                _ => continue,
            };
            let ra = find(&mut parent, a.index());
            let rb = find(&mut parent, b.index());
            if ra == rb {
                return Err(SpiceError::InvalidCircuit(format!(
                    "{kind} between '{}' and '{}' closes a loop of ideal voltage sources \
                     (branch currents would be indeterminate)",
                    self.node_names[a.index()],
                    self.node_names[b.index()],
                )));
            }
            parent[ra] = rb;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_names_are_interned() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.num_nodes(), 2);
        assert_eq!(ckt.node_name(a), "a");
    }

    #[test]
    fn gnd_aliases_resolve_to_ground() {
        let mut ckt = Circuit::new();
        assert_eq!(ckt.node("0"), Circuit::GROUND);
        assert_eq!(ckt.node("gnd"), Circuit::GROUND);
    }

    #[test]
    fn branches_are_allocated_in_order() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v1 = ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.inductor(a, b, 1e-9);
        let v2 = ckt.vsource(b, Circuit::GROUND, Waveform::dc(0.0));
        assert_eq!(v1.branch, 0);
        assert_eq!(v2.branch, 2);
        assert_eq!(ckt.num_branches(), 3);
        assert_eq!(ckt.num_unknowns(), 2 + 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GROUND, 0.0);
    }

    #[test]
    fn validate_flags_dangling_node() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.node("floating");
        ckt.resistor(a, Circuit::GROUND, 1.0);
        let err = ckt.validate().unwrap_err();
        assert!(err.to_string().contains("floating"));
    }

    #[test]
    fn validate_accepts_simple_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, b, 1.0);
        ckt.resistor(b, Circuit::GROUND, 1.0);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn validate_flags_vsource_loop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0)); // parallel pair
        ckt.resistor(a, Circuit::GROUND, 1.0);
        let err = ckt.validate().unwrap_err();
        assert!(err.to_string().contains("loop"), "{err}");
    }

    #[test]
    fn validate_flags_vcvs_in_source_loop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.vsource(b, Circuit::GROUND, Waveform::dc(1.0));
        ckt.vcvs(a, b, a, Circuit::GROUND, 2.0); // closes the loop a-0-b-a
        ckt.resistor(a, b, 1.0);
        let err = ckt.validate().unwrap_err();
        assert!(err.to_string().contains("loop"), "{err}");
    }

    #[test]
    fn validate_accepts_series_sources() {
        // Two sources in series (a chain, not a loop) are fine.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.vsource(b, a, Waveform::dc(1.0));
        ckt.resistor(b, Circuit::GROUND, 1.0);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn validate_flags_non_finite_waveform() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(f64::NAN));
        ckt.resistor(a, Circuit::GROUND, 1.0);
        let err = ckt.validate().unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn validate_flags_non_finite_ic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1.0);
        ckt.set_ic(a, f64::INFINITY);
        let err = ckt.validate().unwrap_err();
        assert!(err.to_string().contains("initial condition"), "{err}");
    }

    #[test]
    fn set_vsource_dc_rejects_non_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GROUND, 1.0);
        let fake = SourceRef {
            element: 0,
            branch: 0,
        };
        assert!(ckt.set_vsource_dc(fake, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn topology_frozen_after_layout() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GROUND, 1.0);
        let _ = ckt.num_unknowns(); // freezes
        ckt.resistor(a, Circuit::GROUND, 1.0);
    }
}
