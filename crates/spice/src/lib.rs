//! A modified-nodal-analysis (MNA) circuit simulator.
//!
//! This crate is the HSPICE stand-in for the `nemscmos` workspace: it
//! provides netlist construction, nonlinear DC operating-point analysis,
//! DC sweeps with state continuation (for hysteretic electromechanical
//! devices), and adaptive transient analysis with trapezoidal /
//! backward-Euler integration.
//!
//! # Architecture
//!
//! * [`circuit::Circuit`] — the netlist builder. Linear elements
//!   (R, C, L, V/I sources, controlled sources) are stored as data;
//!   nonlinear multi-terminal devices implement the [`device::Device`]
//!   trait and stamp their own Jacobian/residual contributions.
//! * [`stamp::Stamper`] — the per-iteration MNA assembler. Small systems
//!   use a dense LU, larger ones the sparse Gilbert–Peierls LU from
//!   `nemscmos-numeric`.
//! * [`analysis`] — operating point (with g_min stepping and source
//!   ramping), DC sweep, and transient analysis.
//! * [`result`] — waveforms and probe access.
//! * [`stats`] — per-thread solver telemetry (Newton iterations, LU
//!   factorizations, step rejections) for harness run reports.
//! * [`profile`] — thread-local robustness overrides consumed by the
//!   harness retry ladder (g_min floor, forced source stepping,
//!   backward-Euler-only integration).
//! * [`budget`] — solve budgets: wall-clock deadlines, iteration caps,
//!   cooperative cancellation, and heartbeats for watchdog supervision.
//!
//! # Example: RC low-pass step response
//!
//! ```
//! use nemscmos_spice::circuit::Circuit;
//! use nemscmos_spice::waveform::Waveform;
//! use nemscmos_spice::analysis::tran::{transient, TranOptions};
//!
//! # fn main() -> Result<(), nemscmos_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.vsource(vin, Circuit::GROUND, Waveform::dc(1.0));
//! ckt.resistor(vin, vout, 1e3);
//! ckt.capacitor(vout, Circuit::GROUND, 1e-9);
//! let res = transient(&mut ckt, 10e-6, &TranOptions::default())?;
//! let v_end = res.voltage(vout).last_value();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 10 time constants
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod budget;
pub mod circuit;
pub mod device;
pub mod element;
pub mod faults;
pub mod guard;
pub mod netlist;
pub mod profile;
pub mod result;
pub mod stamp;
pub mod stats;
pub mod vcd;
pub mod waveform;

use std::error::Error;
use std::fmt;

use nemscmos_numeric::NumericError;

use crate::stats::SolverStats;

/// Errors produced by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The underlying numerical kernel failed.
    Numeric(NumericError),
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Which analysis failed ("op", "dc sweep", "transient").
        analysis: &'static str,
        /// Simulation time at failure (`0.0` for DC analyses).
        time: f64,
        /// Detail about the failing stage.
        detail: String,
    },
    /// The netlist is malformed (dangling node, non-positive element
    /// value, missing source, ...).
    InvalidCircuit(String),
    /// An analysis was asked about a node, element, or probe that does not
    /// exist.
    UnknownProbe(String),
    /// A non-finite value (NaN/Inf) was stamped during MNA assembly,
    /// caught before it could reach the linear solver.
    NonFinite {
        /// What stamped the value (`"device 'nems1'"`, `"linear
        /// elements"`, `"fault injection"`, ...).
        device: String,
        /// The unknown (row) the value landed on, by circuit name.
        node: String,
        /// `"jacobian"` or `"residual"`.
        stage: &'static str,
        /// Simulation time of the failing solve (`0.0` for DC).
        time: f64,
    },
    /// The linearized circuit equations were singular, with the failing
    /// pivot column mapped back to its circuit unknown.
    SingularSystem {
        /// Pivot column that collapsed (raw MNA index).
        column: usize,
        /// The circuit unknown that column belongs to.
        unknown: String,
        /// Best available pivot magnitude (`0.0` if structurally empty).
        pivot: f64,
        /// Simulation time of the failing solve (`0.0` for DC).
        time: f64,
    },
    /// The post-solve KCL audit found a node whose residual current
    /// exceeds the configured tolerance (see
    /// [`guard::GuardConfig::kcl_tol`]).
    KclViolation {
        /// The worst-offending node, by name.
        node: String,
        /// Its residual current in amperes.
        residual: f64,
        /// The tolerance it violated (amperes).
        tol: f64,
        /// Simulation time of the audited solve (`0.0` for DC).
        time: f64,
    },
    /// The solve exceeded a limit from the installed
    /// [`budget::Budget`] — a wall-clock deadline, an iteration cap, or a
    /// watchdog stall cancellation — and was abandoned cooperatively.
    DeadlineExceeded {
        /// Which limit tripped, human-readable ("wall-clock deadline of
        /// 250ms", "newton iteration cap of 10000", ...).
        limit: String,
        /// Simulation time reached when the solve was abandoned (`0.0`
        /// for DC).
        time: f64,
        /// Partial telemetry: solver effort spent inside the budget scope
        /// before the interrupt (boxed to keep `SpiceError` small on the
        /// happy path's `Result`).
        spent: Box<SolverStats>,
    },
    /// The solve was cooperatively cancelled through a
    /// [`budget::InterruptFlag`] (an explicit external cancellation, not
    /// a budget limit).
    Cancelled {
        /// Simulation time reached when the solve was abandoned (`0.0`
        /// for DC).
        time: f64,
        /// Partial telemetry: solver effort spent inside the budget scope
        /// before the interrupt (boxed to keep `SpiceError` small on the
        /// happy path's `Result`).
        spent: Box<SolverStats>,
    },
}

impl SpiceError {
    /// True for the cooperative-interrupt variants
    /// ([`DeadlineExceeded`](SpiceError::DeadlineExceeded) /
    /// [`Cancelled`](SpiceError::Cancelled)). Fallback ladders and retry
    /// policies must propagate these immediately instead of escalating —
    /// the solve was *stopped*, not *stuck*.
    pub fn is_interrupt(&self) -> bool {
        matches!(
            self,
            SpiceError::DeadlineExceeded { .. } | SpiceError::Cancelled { .. }
        )
    }
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Numeric(e) => write!(f, "numerical failure: {e}"),
            SpiceError::NoConvergence {
                analysis,
                time,
                detail,
            } => {
                write!(
                    f,
                    "{analysis} failed to converge at t = {time:.4e} s: {detail}"
                )
            }
            SpiceError::InvalidCircuit(msg) => write!(f, "invalid circuit: {msg}"),
            SpiceError::UnknownProbe(msg) => write!(f, "unknown probe: {msg}"),
            SpiceError::NonFinite {
                device,
                node,
                stage,
                time,
            } => write!(
                f,
                "non-finite {stage} entry stamped by {device} at {node} (t = {time:.4e} s)"
            ),
            SpiceError::SingularSystem {
                column,
                unknown,
                pivot,
                time,
            } => write!(
                f,
                "singular system at t = {time:.4e} s: pivot column {column} ({unknown}) \
                 collapsed (best pivot magnitude {pivot:.3e})"
            ),
            SpiceError::KclViolation {
                node,
                residual,
                tol,
                time,
            } => write!(
                f,
                "KCL audit failed at t = {time:.4e} s: residual {residual:.3e} A at {node} \
                 exceeds tolerance {tol:.3e} A"
            ),
            SpiceError::DeadlineExceeded { limit, time, spent } => write!(
                f,
                "budget exhausted at t = {time:.4e} s ({limit}; spent {} newton iterations, \
                 {} accepted steps)",
                spent.newton_iterations, spent.steps_accepted
            ),
            SpiceError::Cancelled { time, spent } => write!(
                f,
                "solve cancelled at t = {time:.4e} s (spent {} newton iterations, \
                 {} accepted steps)",
                spent.newton_iterations, spent.steps_accepted
            ),
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for SpiceError {
    fn from(e: NumericError) -> Self {
        SpiceError::Numeric(e)
    }
}

/// Convenience alias for results of simulator routines.
pub type Result<T> = std::result::Result<T, SpiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            SpiceError::Numeric(NumericError::SingularMatrix {
                column: 0,
                pivot: 0.0,
            }),
            SpiceError::NoConvergence {
                analysis: "op",
                time: 0.0,
                detail: "x".into(),
            },
            SpiceError::InvalidCircuit("bad".into()),
            SpiceError::UnknownProbe("n7".into()),
            SpiceError::NonFinite {
                device: "device 'nems1'".into(),
                node: "node 'out'".into(),
                stage: "jacobian",
                time: 1e-9,
            },
            SpiceError::SingularSystem {
                column: 3,
                unknown: "node 'out'".into(),
                pivot: 0.0,
                time: 0.0,
            },
            SpiceError::KclViolation {
                node: "node 'out'".into(),
                residual: 1e-3,
                tol: 1e-9,
                time: 2e-9,
            },
            SpiceError::DeadlineExceeded {
                limit: "wall-clock deadline of 250ms".into(),
                time: 1e-9,
                spent: Box::default(),
            },
            SpiceError::Cancelled {
                time: 0.0,
                spent: Box::default(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn interrupts_are_classified() {
        let d = SpiceError::DeadlineExceeded {
            limit: "newton iteration cap of 10".into(),
            time: 0.0,
            spent: Box::default(),
        };
        let c = SpiceError::Cancelled {
            time: 0.0,
            spent: Box::default(),
        };
        assert!(d.is_interrupt());
        assert!(c.is_interrupt());
        assert!(d.to_string().contains("newton iteration cap"));
        assert!(!SpiceError::InvalidCircuit("x".into()).is_interrupt());
    }

    #[test]
    fn numeric_error_converts() {
        let e: SpiceError = NumericError::SingularMatrix {
            column: 2,
            pivot: 0.0,
        }
        .into();
        assert!(matches!(e, SpiceError::Numeric(_)));
    }

    #[test]
    fn health_errors_name_the_culprit() {
        let e = SpiceError::NonFinite {
            device: "device 'beam3'".into(),
            node: "node 'bit'".into(),
            stage: "residual",
            time: 0.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("beam3") && msg.contains("bit") && msg.contains("residual"));

        let e = SpiceError::SingularSystem {
            column: 5,
            unknown: "branch current of inductor a-b".into(),
            pivot: 1e-301,
            time: 0.0,
        };
        assert!(e.to_string().contains("inductor a-b"));
    }
}
