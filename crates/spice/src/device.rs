//! The trait implemented by nonlinear multi-terminal devices.

use crate::element::NodeId;
use crate::stamp::Stamper;

/// Identifier of a device within a [`Circuit`](crate::circuit::Circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

/// Which analysis is asking the device to load itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// DC analysis (operating point or sweep point): capacitors are open,
    /// electromechanical devices are quasi-static.
    Dc,
    /// A transient Newton solve for the step ending at `time`.
    Transient {
        /// Absolute time at the end of the step (seconds).
        time: f64,
        /// Step size (seconds).
        dt: f64,
        /// True when this step integrates with backward Euler instead of
        /// the trapezoidal rule (first step after a discontinuity).
        backward_euler: bool,
    },
}

/// Context handed to devices during load and commit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadContext {
    /// Analysis mode for the current solve.
    pub mode: Mode,
    /// Shunt conductance to ground applied for convergence (siemens).
    pub gmin: f64,
    /// Scale factor on independent sources (`< 1` only during source
    /// stepping); devices normally ignore this.
    pub source_scale: f64,
}

impl LoadContext {
    /// A plain DC context with the given `gmin`.
    pub fn dc(gmin: f64) -> LoadContext {
        LoadContext {
            mode: Mode::Dc,
            gmin,
            source_scale: 1.0,
        }
    }

    /// The time at the end of the step (`0.0` in DC).
    pub fn time(&self) -> f64 {
        match self.mode {
            Mode::Dc => 0.0,
            Mode::Transient { time, .. } => time,
        }
    }
}

/// A candidate MNA solution vector, with convenient node-voltage access.
#[derive(Debug, Clone, Copy)]
pub struct Solution<'a> {
    x: &'a [f64],
}

impl<'a> Solution<'a> {
    /// Wraps a raw unknown vector.
    pub fn new(x: &'a [f64]) -> Solution<'a> {
        Solution { x }
    }

    /// Voltage of node `n` (`0.0` for ground).
    ///
    /// # Panics
    ///
    /// Panics if the node index is outside this solution's layout.
    #[inline]
    pub fn v(&self, n: NodeId) -> f64 {
        if n.is_ground() {
            0.0
        } else {
            self.x[n.index() - 1]
        }
    }

    /// Raw unknown by global index (used by devices for their internal
    /// unknowns and branch currents).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn raw(&self, idx: usize) -> f64 {
        self.x[idx]
    }

    /// The full unknown vector.
    pub fn as_slice(&self) -> &[f64] {
        self.x
    }
}

/// FNV-1a offset basis, the seed for [`Device::batch_key`] fingerprints.
pub const BATCH_KEY_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one 64-bit word into an FNV-1a hash; device implementations
/// chain this over their model-parameter bits (via [`f64::to_bits`]) and
/// a concrete-type tag to build a [`Device::batch_key`].
pub fn batch_key_word(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Structure-of-arrays scratch columns for one homogeneous device batch.
///
/// The engine gathers every batch member's inputs into the `vin`/`bin`
/// columns (one push per lane per column), has one representative member
/// evaluate the whole batch into `out` in a tight slice loop, and then
/// scatters each lane's outputs through the stamper in the original
/// per-device order. Four `f64` columns each way plus one `bool` column
/// cover the three-terminal conduction models in this workspace (gate /
/// drain / source voltage + width in; current + three partials out);
/// devices that need fewer columns simply leave the rest empty, as long
/// as every member pushes the same columns so lanes stay aligned.
#[derive(Debug)]
pub struct EvalBatch {
    /// Per-lane `f64` input columns gathered from the candidate solution.
    pub vin: [Vec<f64>; 4],
    /// Per-lane discrete-state column (e.g. a NEMFET's contact flag),
    /// letting devices in different hysteresis states share a batch.
    pub bin: Vec<bool>,
    /// Per-lane `f64` output columns filled by [`Device::batch_eval`].
    pub out: [Vec<f64>; 4],
}

impl EvalBatch {
    /// An empty batch.
    pub fn new() -> EvalBatch {
        EvalBatch {
            vin: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            bin: Vec::new(),
            out: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
        }
    }

    /// Number of gathered lanes (length of the first input column).
    pub fn lanes(&self) -> usize {
        self.vin[0].len()
    }

    /// Empties every column, keeping the allocated capacity.
    pub fn clear(&mut self) {
        for c in &mut self.vin {
            c.clear();
        }
        self.bin.clear();
        for c in &mut self.out {
            c.clear();
        }
    }
}

impl Default for EvalBatch {
    fn default() -> EvalBatch {
        EvalBatch::new()
    }
}

/// A nonlinear multi-terminal device that participates in MNA assembly.
///
/// Devices own their *dynamic state* (integration history, hysteresis
/// flags). During a Newton solve the state is frozen: [`Device::load`] must
/// be a pure function of the candidate solution and the context. When a
/// step (or DC point) is accepted the analysis calls [`Device::commit`],
/// which is the only place state may change.
///
/// # Batched evaluation
///
/// Devices may opt into structure-of-arrays batched evaluation by
/// returning a key from [`Device::batch_key`] and implementing the three
/// `batch_*` hooks. At layout freeze the circuit groups instances with
/// equal keys into one batch; per assembly the engine calls
/// [`Device::batch_gather`] on every member (in device order),
/// [`Device::batch_eval`] once on the first member, and
/// [`Device::batch_scatter`] on every member in the original global
/// device order. The scatter must replay *exactly* the stamp-call
/// sequence [`Device::load`] would produce, so the batched and scalar
/// paths are bitwise identical.
///
/// Key contract: equal keys imply the same concrete device type, the same
/// gather/output column usage, and bitwise-equal model parameters for
/// everything [`Device::batch_eval`] reads from `self` — per-instance
/// values (terminal nodes, width, discrete state) must travel through the
/// batch columns instead. Build keys by folding the parameter bits and a
/// unique type tag with [`batch_key_word`].
pub trait Device: std::fmt::Debug {
    /// Instance name for diagnostics.
    fn name(&self) -> &str;

    /// Number of internal MNA unknowns this device needs (e.g. a dynamic
    /// NEMS beam contributes displacement and velocity).
    fn num_internal(&self) -> usize {
        0
    }

    /// Informs the device of the global index of its first internal
    /// unknown. Called once when the circuit layout is finalized; devices
    /// without internal unknowns can ignore it.
    fn set_internal_base(&mut self, base: usize) {
        let _ = base;
    }

    /// Stamps the device's Jacobian and residual contributions at the
    /// candidate solution `x`.
    fn load(&self, x: &Solution<'_>, ctx: &LoadContext, st: &mut Stamper);

    /// Accepts a converged solution: update integration history and
    /// hysteresis state. Returns `true` if a *discrete* state changed
    /// (e.g. a NEMS beam pulled in), which makes DC analyses re-solve for
    /// consistency.
    fn commit(&mut self, x: &Solution<'_>, ctx: &LoadContext) -> bool;

    /// Resets all dynamic state to the power-on default (fresh analysis).
    fn reset_state(&mut self);

    /// Provides an initial guess for the device's internal unknowns
    /// (node voltages are guessed by the analysis itself).
    fn initial_guess(&self, x: &mut [f64]) {
        let _ = x;
    }

    /// Batch-partitioning key (see the trait-level contract), or `None`
    /// to always evaluate this instance through [`Device::load`]. Must be
    /// stable across the circuit's lifetime — the partition is computed
    /// once at layout freeze.
    fn batch_key(&self) -> Option<u64> {
        None
    }

    /// Pushes this instance's per-lane inputs (one value per used column)
    /// onto the batch. Called once per assembly for every batch member.
    fn batch_gather(&self, x: &Solution<'_>, batch: &mut EvalBatch) {
        let _ = (x, batch);
    }

    /// Evaluates every gathered lane of the batch, pushing one value per
    /// used output column per lane. Called once per batch on the first
    /// member; by the key contract its model parameters are bitwise equal
    /// to every other member's.
    fn batch_eval(&self, ctx: &LoadContext, batch: &mut EvalBatch) {
        let _ = (ctx, batch);
    }

    /// Stamps this instance's contributions from its `lane` of the
    /// evaluated batch, replaying the exact stamp sequence of
    /// [`Device::load`]. The default delegates to `load` so partially
    /// implemented devices stay correct (at scalar cost).
    fn batch_scatter(
        &self,
        lane: usize,
        batch: &EvalBatch,
        x: &Solution<'_>,
        ctx: &LoadContext,
        st: &mut Stamper,
    ) {
        let _ = (lane, batch);
        self.load(x, ctx, st);
    }
}
