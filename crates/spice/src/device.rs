//! The trait implemented by nonlinear multi-terminal devices.

use crate::element::NodeId;
use crate::stamp::Stamper;

/// Identifier of a device within a [`Circuit`](crate::circuit::Circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

/// Which analysis is asking the device to load itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// DC analysis (operating point or sweep point): capacitors are open,
    /// electromechanical devices are quasi-static.
    Dc,
    /// A transient Newton solve for the step ending at `time`.
    Transient {
        /// Absolute time at the end of the step (seconds).
        time: f64,
        /// Step size (seconds).
        dt: f64,
        /// True when this step integrates with backward Euler instead of
        /// the trapezoidal rule (first step after a discontinuity).
        backward_euler: bool,
    },
}

/// Context handed to devices during load and commit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadContext {
    /// Analysis mode for the current solve.
    pub mode: Mode,
    /// Shunt conductance to ground applied for convergence (siemens).
    pub gmin: f64,
    /// Scale factor on independent sources (`< 1` only during source
    /// stepping); devices normally ignore this.
    pub source_scale: f64,
}

impl LoadContext {
    /// A plain DC context with the given `gmin`.
    pub fn dc(gmin: f64) -> LoadContext {
        LoadContext {
            mode: Mode::Dc,
            gmin,
            source_scale: 1.0,
        }
    }

    /// The time at the end of the step (`0.0` in DC).
    pub fn time(&self) -> f64 {
        match self.mode {
            Mode::Dc => 0.0,
            Mode::Transient { time, .. } => time,
        }
    }
}

/// A candidate MNA solution vector, with convenient node-voltage access.
#[derive(Debug, Clone, Copy)]
pub struct Solution<'a> {
    x: &'a [f64],
}

impl<'a> Solution<'a> {
    /// Wraps a raw unknown vector.
    pub fn new(x: &'a [f64]) -> Solution<'a> {
        Solution { x }
    }

    /// Voltage of node `n` (`0.0` for ground).
    ///
    /// # Panics
    ///
    /// Panics if the node index is outside this solution's layout.
    #[inline]
    pub fn v(&self, n: NodeId) -> f64 {
        if n.is_ground() {
            0.0
        } else {
            self.x[n.index() - 1]
        }
    }

    /// Raw unknown by global index (used by devices for their internal
    /// unknowns and branch currents).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn raw(&self, idx: usize) -> f64 {
        self.x[idx]
    }

    /// The full unknown vector.
    pub fn as_slice(&self) -> &[f64] {
        self.x
    }
}

/// A nonlinear multi-terminal device that participates in MNA assembly.
///
/// Devices own their *dynamic state* (integration history, hysteresis
/// flags). During a Newton solve the state is frozen: [`Device::load`] must
/// be a pure function of the candidate solution and the context. When a
/// step (or DC point) is accepted the analysis calls [`Device::commit`],
/// which is the only place state may change.
pub trait Device: std::fmt::Debug {
    /// Instance name for diagnostics.
    fn name(&self) -> &str;

    /// Number of internal MNA unknowns this device needs (e.g. a dynamic
    /// NEMS beam contributes displacement and velocity).
    fn num_internal(&self) -> usize {
        0
    }

    /// Informs the device of the global index of its first internal
    /// unknown. Called once when the circuit layout is finalized; devices
    /// without internal unknowns can ignore it.
    fn set_internal_base(&mut self, base: usize) {
        let _ = base;
    }

    /// Stamps the device's Jacobian and residual contributions at the
    /// candidate solution `x`.
    fn load(&self, x: &Solution<'_>, ctx: &LoadContext, st: &mut Stamper);

    /// Accepts a converged solution: update integration history and
    /// hysteresis state. Returns `true` if a *discrete* state changed
    /// (e.g. a NEMS beam pulled in), which makes DC analyses re-solve for
    /// consistency.
    fn commit(&mut self, x: &Solution<'_>, ctx: &LoadContext) -> bool;

    /// Resets all dynamic state to the power-on default (fresh analysis).
    fn reset_state(&mut self);

    /// Provides an initial guess for the device's internal unknowns
    /// (node voltages are guessed by the analysis itself).
    fn initial_guess(&self, x: &mut [f64]) {
        let _ = x;
    }
}
