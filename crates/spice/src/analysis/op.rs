//! DC operating-point analysis with g_min stepping and source ramping.

use nemscmos_numeric::newton::NewtonOptions;

use super::engine::{newton_solve, Workspace};
use crate::circuit::Circuit;
use crate::device::{LoadContext, Mode, Solution};
use crate::element::NodeId;
use crate::result::OpResult;
use crate::{Result, SpiceError};

/// Options for [`op_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpOptions {
    /// Convergence shunt from every node to ground (siemens).
    pub gmin: f64,
    /// Newton iteration settings.
    pub newton: NewtonOptions,
    /// Maximum re-solves for discrete device-state consistency
    /// (hysteretic devices may flip state after a solve).
    pub max_state_loops: usize,
}

impl Default for OpOptions {
    fn default() -> Self {
        OpOptions {
            gmin: 1e-12,
            newton: NewtonOptions::default(),
            max_state_loops: 16,
        }
    }
}

/// Computes the DC operating point with default options.
///
/// # Errors
///
/// Returns [`SpiceError::NoConvergence`] when Newton, g_min stepping *and*
/// source stepping all fail, or [`SpiceError::InvalidCircuit`] for a
/// malformed netlist.
pub fn op(ckt: &mut Circuit) -> Result<OpResult> {
    op_with(ckt, &OpOptions::default())
}

/// Computes the DC operating point with explicit options.
///
/// # Errors
///
/// See [`op`].
pub fn op_with(ckt: &mut Circuit, opts: &OpOptions) -> Result<OpResult> {
    let mut ws = Workspace::new();
    let x = op_vector(ckt, opts, None, None, &mut ws)?;
    Ok(OpResult::new(x, ckt.num_node_unknowns(), ckt.branch_base()))
}

/// Computes a DC operating point seeded with initial node-voltage guesses
/// — the way to select an attractor of a *bistable* circuit (e.g. an SRAM
/// cell in a chosen stored state) without clamp-current artifacts.
///
/// Unlisted nodes start at `0 V`.
///
/// # Errors
///
/// See [`op`]; additionally returns [`SpiceError::InvalidCircuit`] if a
/// seed references a node outside the circuit.
pub fn op_seeded(ckt: &mut Circuit, seeds: &[(NodeId, f64)], opts: &OpOptions) -> Result<OpResult> {
    let n = ckt.num_unknowns();
    let mut guess = vec![0.0; n];
    for dev in ckt.devices() {
        dev.initial_guess(&mut guess);
    }
    for &(node, v) in seeds {
        if node.is_ground() {
            continue;
        }
        let idx = node.index() - 1;
        if idx >= ckt.num_node_unknowns() {
            return Err(SpiceError::InvalidCircuit(format!(
                "seed node index {} outside circuit",
                node.index()
            )));
        }
        guess[idx] = v;
    }
    let mut ws = Workspace::new();
    let x = op_vector(ckt, opts, Some(&guess), None, &mut ws)?;
    Ok(OpResult::new(x, ckt.num_node_unknowns(), ckt.branch_base()))
}

/// Core OP driver, shared with the transient t = 0 solve and DC sweeps.
///
/// `guess` warm-starts Newton; `ic_clamps` force node voltages (used for
/// biasing bistable circuits at t = 0).
pub(crate) fn op_vector(
    ckt: &mut Circuit,
    opts: &OpOptions,
    guess: Option<&[f64]>,
    ic_clamps: Option<&[(NodeId, f64)]>,
    ws: &mut Workspace,
) -> Result<Vec<f64>> {
    ckt.validate()?;
    let n = ckt.num_unknowns();
    let mut x = match guess {
        Some(g) => {
            if g.len() != n {
                return Err(SpiceError::InvalidCircuit(format!(
                    "warm-start guess has {} unknowns, circuit has {n}",
                    g.len()
                )));
            }
            g.to_vec()
        }
        None => {
            let mut x0 = vec![0.0; n];
            for dev in ckt.devices() {
                dev.initial_guess(&mut x0);
            }
            x0
        }
    };

    // Align device discrete state (hysteresis flags) with the initial
    // guess, so a seeded bistable circuit starts in the intended attractor
    // rather than the power-on state.
    {
        let ctx = LoadContext::dc(opts.gmin);
        let sol = Solution::new(&x);
        for dev in ckt.devices_mut() {
            let _ = dev.commit(&sol, &ctx);
        }
    }

    // Discrete-state consistency loop: hysteretic devices may flip after a
    // converged solve; re-solve until no device changes state.
    for _ in 0..opts.max_state_loops.max(1) {
        solve_dc_point(ckt, &mut x, opts, ic_clamps, ws)?;
        let ctx = LoadContext::dc(opts.gmin);
        let sol = Solution::new(&x);
        let mut changed = false;
        for dev in ckt.devices_mut() {
            changed |= dev.commit(&sol, &ctx);
        }
        if !changed {
            crate::budget::pulse_solve_done();
            return Ok(x);
        }
    }
    Err(SpiceError::NoConvergence {
        analysis: "op",
        time: 0.0,
        detail: "device discrete state failed to reach consistency".into(),
    })
}

/// Newton with fallbacks: plain, g_min stepping, then source stepping.
fn solve_dc_point(
    ckt: &Circuit,
    x: &mut [f64],
    opts: &OpOptions,
    ic_clamps: Option<&[(NodeId, f64)]>,
    ws: &mut Workspace,
) -> Result<()> {
    // Harness retry-ladder overrides (neutral unless a rung is active).
    let prof = crate::profile::current();
    let base_gmin = prof.effective_gmin(opts.gmin);
    let base_ctx = LoadContext {
        mode: Mode::Dc,
        gmin: base_gmin,
        source_scale: 1.0,
    };
    let saved: Vec<f64> = x.to_vec();
    if !prof.force_source_stepping {
        // Interrupt errors (deadline/cancellation) short-circuit the whole
        // fallback chain: the solve was stopped, not stuck, so escalating
        // to the next strategy would just burn more of an expired budget.
        match newton_solve(ckt, x, &base_ctx, &opts.newton, None, ic_clamps, ws) {
            Ok(_) => return Ok(()),
            Err(e) if e.is_interrupt() => return Err(e),
            Err(_) => {}
        }

        // g_min stepping: start very lossy, tighten geometrically. Under a
        // retry rung the ladder is finer (÷3 per rung instead of ÷10).
        x.copy_from_slice(&saved);
        let mut ok = true;
        let mut gmin = 1e-2;
        let tighten = if prof.gmin_floor.is_some() { 3.0 } else { 10.0 };
        while gmin > base_gmin {
            let ctx = LoadContext {
                mode: Mode::Dc,
                gmin,
                source_scale: 1.0,
            };
            match newton_solve(ckt, x, &ctx, &opts.newton, None, ic_clamps, ws) {
                Ok(_) => {}
                Err(e) if e.is_interrupt() => return Err(e),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            gmin /= tighten;
        }
        if ok {
            match newton_solve(ckt, x, &base_ctx, &opts.newton, None, ic_clamps, ws) {
                Ok(_) => return Ok(()),
                Err(e) if e.is_interrupt() => return Err(e),
                Err(_) => {}
            }
        }
    }

    // Source stepping: ramp all independent sources to 100% (finer ramp
    // when the retry ladder demands it).
    x.iter_mut().for_each(|v| *v = 0.0);
    let ramp_steps = if prof.force_source_stepping { 20 } else { 10 };
    for step in 1..=ramp_steps {
        let scale = step as f64 / ramp_steps as f64;
        let ctx = LoadContext {
            mode: Mode::Dc,
            gmin: base_gmin,
            source_scale: scale,
        };
        newton_solve(ckt, x, &ctx, &opts.newton, None, ic_clamps, ws).map_err(|e| match e {
            // Typed health diagnostics (non-finite assembly, singular pivot
            // with attribution, KCL audit) and budget interrupts survive
            // the fallback chain unwrapped so callers can triage them.
            SpiceError::NonFinite { .. }
            | SpiceError::SingularSystem { .. }
            | SpiceError::KclViolation { .. }
            | SpiceError::DeadlineExceeded { .. }
            | SpiceError::Cancelled { .. } => e,
            e => SpiceError::NoConvergence {
                analysis: "op",
                time: 0.0,
                detail: format!("source stepping failed at scale {:.0}%: {e}", scale * 100.0),
            },
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 3e3);
        let res = op(&mut ckt).unwrap();
        // gmin (1e-12 S) shifts the divider by ~1 nV; allow for it.
        assert!((res.voltage(b) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn source_current_sign_convention() {
        // A 1 V source driving 1 kΩ: 1 mA leaves the + terminal into the
        // circuit, so the through-source current is −1 mA.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = op(&mut ckt).unwrap();
        assert!((res.source_current(v) + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(5.0));
        ckt.resistor(a, b, 1e3);
        ckt.capacitor(b, Circuit::GROUND, 1e-12);
        let res = op(&mut ckt).unwrap();
        // No DC path through the cap: b floats to the source value via R
        // (gmin pulls it only negligibly).
        assert!((res.voltage(b) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn inductor_is_short_in_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, b, 1e3);
        ckt.inductor(b, Circuit::GROUND, 1e-6);
        let res = op(&mut ckt).unwrap();
        assert!(res.voltage(b).abs() < 1e-9);
    }

    #[test]
    fn isource_injects_current() {
        // 1 mA from ground into node a across 1 kΩ → 1 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource(Circuit::GROUND, a, Waveform::dc(1e-3));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = op(&mut ckt).unwrap();
        assert!((res.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_gain_stage() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(inp, Circuit::GROUND, Waveform::dc(0.5));
        // i = gm·v(in) pulled out of `out` (current flows out→gnd through
        // the source), so v(out) = −gm·R·v(in).
        ckt.vccs(out, Circuit::GROUND, inp, Circuit::GROUND, 2e-3);
        ckt.resistor(out, Circuit::GROUND, 1e3);
        let res = op(&mut ckt).unwrap();
        assert!((res.voltage(out) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_doubles_voltage() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(inp, Circuit::GROUND, Waveform::dc(0.7));
        ckt.vcvs(out, Circuit::GROUND, inp, Circuit::GROUND, 2.0);
        ckt.resistor(out, Circuit::GROUND, 1e3);
        let res = op(&mut ckt).unwrap();
        assert!((res.voltage(out) - 1.4).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_is_invalid() {
        let mut ckt = Circuit::new();
        assert!(matches!(op(&mut ckt), Err(SpiceError::InvalidCircuit(_))));
    }

    #[test]
    fn warm_start_wrong_length_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1.0);
        let bad = vec![0.0; 99];
        let mut ws = Workspace::new();
        assert!(op_vector(&mut ckt, &OpOptions::default(), Some(&bad), None, &mut ws).is_err());
    }
}

#[cfg(test)]
mod fallback_tests {
    use super::*;
    use crate::waveform::Waveform;
    use nemscmos_numeric::newton::NewtonOptions;

    /// A deliberately hostile start: tiny Newton budget forces the plain
    /// solve to fail so the g_min-stepping and source-stepping fallbacks
    /// must carry the analysis.
    #[test]
    fn fallbacks_rescue_a_starved_newton() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(5.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);
        // max_step so small the 2.5 V answer needs many damped steps; a
        // tiny max_iter makes the direct attempt fail, but each fallback
        // stage starts closer and eventually lands.
        let opts = OpOptions {
            newton: NewtonOptions {
                max_iter: 12,
                max_step: 0.3,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = op_with(&mut ckt, &opts).expect("fallbacks should converge");
        assert!((res.voltage(b) - 2.5).abs() < 1e-3);
    }

    /// With an impossible budget every strategy fails and the error says
    /// which stage gave up.
    #[test]
    fn exhausted_fallbacks_report_source_stepping() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(100.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let opts = OpOptions {
            newton: NewtonOptions {
                max_iter: 2,
                max_step: 1e-3,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = op_with(&mut ckt, &opts).unwrap_err();
        assert!(err.to_string().contains("source stepping"), "{err}");
    }
}
