//! AC small-signal analysis.
//!
//! The circuit is linearized at its DC operating point (the Newton
//! Jacobian *is* the small-signal conductance matrix `G`), reactive
//! elements contribute `jωC` / `jωL` terms, and the complex system
//! `(G + jωC) x = b` is solved per frequency with a unit-amplitude drive
//! on one chosen source.

use nemscmos_numeric::complex::{Complex, ComplexMatrix};

use super::engine::load_linear;
use super::op::{op_vector, OpOptions};
use crate::circuit::Circuit;
use crate::device::{LoadContext, Mode, Solution};
use crate::element::{Element, NodeId, SourceRef};
use crate::stamp::Stamper;
use crate::{Result, SpiceError};

/// Result of an AC sweep: complex node voltages per frequency for a
/// 1 V-amplitude drive on the designated source.
#[derive(Debug, Clone, PartialEq)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// `data[k]` is the complex unknown vector at `freqs[k]`.
    data: Vec<Vec<Complex>>,
    num_node_unknowns: usize,
    branch_base: usize,
}

impl AcResult {
    /// The swept frequencies (Hz).
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage (relative to the 1 V drive) of node `n` across the
    /// sweep.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the layout.
    pub fn voltage(&self, n: NodeId) -> Vec<Complex> {
        if n.is_ground() {
            return vec![Complex::ZERO; self.freqs.len()];
        }
        self.data.iter().map(|x| x[n.index() - 1]).collect()
    }

    /// Magnitude response of node `n` in dB across the sweep.
    pub fn magnitude_db(&self, n: NodeId) -> Vec<(f64, f64)> {
        self.freqs
            .iter()
            .zip(self.voltage(n))
            .map(|(&f, v)| (f, v.db()))
            .collect()
    }

    /// Frequency of the sweep's maximum magnitude at node `n`.
    pub fn peak_frequency(&self, n: NodeId) -> f64 {
        let v = self.voltage(n);
        let mut best = (self.freqs[0], 0.0f64);
        for (&f, z) in self.freqs.iter().zip(v) {
            if z.abs() > best.1 {
                best = (f, z.abs());
            }
        }
        best.0
    }
}

/// Logarithmic frequency grid from `f_start` to `f_stop` with
/// `points_per_decade` samples per decade.
///
/// # Panics
///
/// Panics if the range is not positive-increasing or the density is zero.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start, "bad sweep range");
    assert!(points_per_decade > 0, "need at least one point per decade");
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|k| f_start * 10f64.powf(decades * k as f64 / (n - 1) as f64))
        .collect()
}

/// Runs an AC sweep with a 1 V small-signal drive on `source`.
///
/// All other independent sources are AC-grounded (their DC values only
/// set the operating point). Nonlinear devices are linearized at the
/// operating point; their Jacobian stamps become the conductance matrix.
///
/// Note: electromechanical devices linearize through their *electrical*
/// Jacobian only — beam inertia is not represented in AC (use the
/// explicit R/L/C electrical-equivalent of the paper's Fig. 6(b) for
/// resonator studies, as the `nems_resonator` example does).
///
/// # Errors
///
/// Propagates operating-point failures; returns
/// [`SpiceError::InvalidCircuit`] for an empty frequency list and
/// [`SpiceError::Numeric`] if the complex system is singular.
pub fn ac(
    ckt: &mut Circuit,
    source: SourceRef,
    freqs: &[f64],
    opts: &OpOptions,
) -> Result<AcResult> {
    if freqs.is_empty() {
        return Err(SpiceError::InvalidCircuit("empty AC frequency list".into()));
    }
    // 1. Operating point.
    let mut ws = super::engine::Workspace::new();
    let x_op = op_vector(ckt, opts, None, None, &mut ws)?;
    let n = x_op.len();

    // 2. Small-signal conductance matrix from the Jacobian at the OP.
    let ctx = LoadContext {
        mode: Mode::Dc,
        gmin: opts.gmin,
        source_scale: 1.0,
    };
    let mut st = Stamper::new(n);
    load_linear(ckt, &x_op, &ctx, &mut st, None)?;
    let sol = Solution::new(&x_op);
    for dev in ckt.devices() {
        dev.load(&sol, &ctx, &mut st);
    }
    st.gmin_shunts(ctx.gmin, ckt.num_node_unknowns(), &x_op);
    let g_entries = st.jacobian_entries();

    // 3. Reactive stamps (ω-scaled each frequency).
    let branch_base = ckt.branch_base();
    let mut cap_entries: Vec<(usize, usize, f64)> = Vec::new();
    for e in ckt.elements() {
        match *e {
            Element::Capacitor { a, b, farads } => {
                let (ra, rb) = (a.index(), b.index());
                if ra > 0 {
                    cap_entries.push((ra - 1, ra - 1, farads));
                }
                if rb > 0 {
                    cap_entries.push((rb - 1, rb - 1, farads));
                }
                if ra > 0 && rb > 0 {
                    cap_entries.push((ra - 1, rb - 1, -farads));
                    cap_entries.push((rb - 1, ra - 1, -farads));
                }
            }
            Element::Inductor {
                branch, henries, ..
            } => {
                // DC branch equation is v(a) − v(b) = 0; AC adds −jωL·i.
                let br = branch_base + branch;
                cap_entries.push((br, br, -henries));
            }
            _ => {}
        }
    }

    // 4. Drive vector: unit amplitude on the chosen source's branch row.
    let mut b = vec![Complex::ZERO; n];
    b[branch_base + source.branch] = Complex::ONE;

    // 5. Solve per frequency.
    let mut data = Vec::with_capacity(freqs.len());
    for &f in freqs {
        if !(f.is_finite() && f > 0.0) {
            return Err(SpiceError::InvalidCircuit(format!("bad AC frequency {f}")));
        }
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut m = ComplexMatrix::zeros(n);
        for &(r, c, v) in &g_entries {
            m.add(r, c, Complex::real(v));
        }
        for &(r, c, v) in &cap_entries {
            m.add(r, c, Complex::imag(omega * v));
        }
        let x = m.solve(&b)?;
        data.push(x);
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        data,
        num_node_unknowns: ckt.num_node_unknowns(),
        branch_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn rc_lowpass_corner_and_rolloff() {
        let r = 1e3;
        let c = 1e-9;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c); // ≈ 159 kHz
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let src = ckt.vsource(a, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor(a, b, r);
        ckt.capacitor(b, Circuit::GROUND, c);
        let freqs = [fc / 100.0, fc, 100.0 * fc];
        let res = ac(&mut ckt, src, &freqs, &OpOptions::default()).unwrap();
        let v = res.voltage(b);
        assert!(
            (v[0].abs() - 1.0).abs() < 1e-3,
            "passband gain {}",
            v[0].abs()
        );
        assert!((v[1].abs() - 1.0 / 2f64.sqrt()).abs() < 1e-3, "-3 dB point");
        assert!(
            (v[1].arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-2,
            "-45° at corner"
        );
        // Two decades above the corner: −40 dB ± 0.2.
        assert!((v[2].db() + 40.0).abs() < 0.2, "rolloff {}", v[2].db());
    }

    #[test]
    fn rlc_series_resonance_peak() {
        let l = 1e-6_f64;
        let c = 1e-9_f64;
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt()); // ≈ 5.03 MHz
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        let o = ckt.node("o");
        let src = ckt.vsource(a, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor(a, m, 10.0);
        ckt.inductor(m, o, l);
        ckt.capacitor(o, Circuit::GROUND, c);
        // Voltage across the capacitor peaks near resonance (Q ≈ 3.2).
        let freqs = log_sweep(f0 / 30.0, 30.0 * f0, 60);
        let res = ac(&mut ckt, src, &freqs, &OpOptions::default()).unwrap();
        let fpeak = res.peak_frequency(o);
        assert!(
            (fpeak / f0 - 1.0).abs() < 0.05,
            "peak at {fpeak:.3e}, resonance {f0:.3e}"
        );
        // Peak magnitude ≈ Q = (1/R)·sqrt(L/C) = 3.16.
        let peak = res
            .voltage(o)
            .iter()
            .map(|z| z.abs())
            .fold(0.0f64, f64::max);
        assert!((peak - 3.16).abs() < 0.3, "peak |H| = {peak:.2}");
    }

    #[test]
    fn empty_frequency_list_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let src = ckt.vsource(a, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor(a, Circuit::GROUND, 1.0);
        assert!(ac(&mut ckt, src, &[], &OpOptions::default()).is_err());
        assert!(ac(&mut ckt, src, &[-5.0], &OpOptions::default()).is_err());
    }

    #[test]
    fn log_sweep_endpoints_and_monotone() {
        let f = log_sweep(10.0, 1e6, 10);
        assert!((f[0] - 10.0).abs() < 1e-9);
        assert!((f.last().unwrap() - 1e6).abs() / 1e6 < 1e-9);
        for w in f.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "bad sweep range")]
    fn log_sweep_rejects_inverted_range() {
        let _ = log_sweep(1e6, 10.0, 10);
    }
}
