//! System-matrix extraction at a bias point.
//!
//! The scaling benchmark (`perfbase --scaling`) measures ordering and
//! factorization cost on the *actual* Newton Jacobian of a generated
//! circuit, not a synthetic pattern. This module assembles that matrix
//! the same way AC analysis does: solve the DC operating point (with the
//! circuit's initial conditions clamped, exactly like a transient's
//! t = 0 solve, so bistable arrays land in a definite state), then load
//! every element and linearized device into a fresh stamper and read the
//! triplets back out.

use super::engine::{load_linear, Workspace};
use super::op::{op_vector, OpOptions};
use crate::circuit::Circuit;
use crate::device::{LoadContext, Mode, Solution};
use crate::stamp::Stamper;
use crate::Result;

/// The Newton Jacobian of a circuit at its (IC-clamped) operating point.
#[derive(Debug, Clone)]
pub struct SystemProbe {
    /// Number of MNA unknowns (node voltages plus branch currents).
    pub n: usize,
    /// Nonzero Jacobian entries as `(row, col, value)` triplets; duplicate
    /// coordinates are possible and sum, matching
    /// [`CscMatrix::from_triplets`] semantics.
    ///
    /// [`CscMatrix::from_triplets`]: nemscmos_numeric::sparse::CscMatrix::from_triplets
    pub entries: Vec<(usize, usize, f64)>,
}

/// Extracts the DC Jacobian at the circuit's operating point.
///
/// Initial conditions registered with [`Circuit::set_ic`] are clamped
/// during the solve (the transient t = 0 convention) so a sea of bistable
/// cells converges to the seeded state instead of wandering.
///
/// # Errors
///
/// Propagates operating-point failures.
pub fn dc_jacobian(ckt: &mut Circuit, opts: &OpOptions) -> Result<SystemProbe> {
    let ics: Vec<_> = ckt.ics().to_vec();
    let clamps = if ics.is_empty() {
        None
    } else {
        Some(ics.as_slice())
    };
    let mut ws = Workspace::new();
    let x_op = op_vector(ckt, opts, None, clamps, &mut ws)?;
    let n = x_op.len();

    let ctx = LoadContext {
        mode: Mode::Dc,
        gmin: opts.gmin,
        source_scale: 1.0,
    };
    let mut st = Stamper::new(n);
    load_linear(ckt, &x_op, &ctx, &mut st, None)?;
    let sol = Solution::new(&x_op);
    for dev in ckt.devices() {
        dev.load(&sol, &ctx, &mut st);
    }
    st.gmin_shunts(ctx.gmin, ckt.num_node_unknowns(), &x_op);
    Ok(SystemProbe {
        n,
        entries: st.jacobian_entries(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::NodeId;
    use crate::waveform::Waveform;

    #[test]
    fn resistor_divider_jacobian_matches_hand_stamp() {
        // vdd --R1-- mid --R2-- gnd, driven by a source: unknowns are
        // [v(vdd), v(mid), i(src)].
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let mid = ckt.node("mid");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(vdd, mid, 1000.0);
        ckt.resistor(mid, Circuit::GROUND, 1000.0);
        let probe = dc_jacobian(&mut ckt, &OpOptions::default()).unwrap();
        assert_eq!(probe.n, 3);
        let sum = |r: usize, c: usize| -> f64 {
            probe
                .entries
                .iter()
                .filter(|&&(er, ec, _)| er == r && ec == c)
                .map(|&(_, _, v)| v)
                .sum()
        };
        // Conductance block (row/col 0-1) plus source incidence (row/col 2).
        assert!((sum(0, 0) - 1e-3).abs() < 1e-9);
        assert!((sum(1, 1) - 2e-3).abs() < 1e-9);
        assert!((sum(0, 1) + 1e-3).abs() < 1e-9);
        assert_eq!(sum(0, 2), 1.0);
        assert_eq!(sum(2, 0), 1.0);
    }

    #[test]
    fn ics_clamp_the_probe_operating_point() {
        // A floating capacitor node has no DC path; the IC clamp pins it,
        // and the probe must not error out.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.capacitor(a, NodeId::GROUND, 1e-15);
        ckt.set_ic(a, 0.75);
        let probe = dc_jacobian(&mut ckt, &OpOptions::default()).unwrap();
        assert_eq!(probe.n, 1);
    }
}
