//! Shared assembly and Newton machinery used by every analysis.

use nemscmos_numeric::newton::{NewtonOptions, NewtonSolver, NewtonStatus};
use nemscmos_numeric::NumericError;

use std::time::Instant;

use crate::circuit::Circuit;
use crate::device::{EvalBatch, LoadContext, Mode, Solution};
use crate::element::{Element, NodeId};
use crate::faults::FaultKind;
use crate::stamp::{JacobianKey, StampSection, Stamper};
use crate::{Result, SpiceError};

/// Linear-algebra state carried across Newton solves and timesteps.
///
/// The [`Stamper`] inside accumulates the incremental fast path (frozen
/// assembly pattern, reusable factorizations — see [`crate::stamp`]), so
/// every analysis creates one `Workspace` per run and threads it through
/// each [`newton_solve`]. In legacy mode
/// ([`SolveProfile::legacy_linear_algebra`]) the stamper is recreated per
/// solve, replicating the pre-fast-path behavior exactly.
///
/// [`SolveProfile::legacy_linear_algebra`]: crate::profile::SolveProfile::legacy_linear_algebra
#[derive(Debug, Default)]
pub(crate) struct Workspace {
    st: Option<Stamper>,
    /// Structure-of-arrays gather/eval columns, one per device batch,
    /// reused across assemblies so the steady state allocates nothing.
    scratch: Vec<EvalBatch>,
}

impl Workspace {
    pub(crate) fn new() -> Workspace {
        Workspace {
            st: None,
            scratch: Vec::new(),
        }
    }

    /// The cached stamper for `n` unknowns — recreated when the dimension
    /// or backend choice changed, or on every call in legacy mode — plus
    /// the batch scratch columns, split-borrowed so assembly can use both.
    fn parts(&mut self, n: usize) -> (&mut Stamper, &mut Vec<EvalBatch>) {
        let stale = match &self.st {
            Some(st) => {
                st.is_legacy()
                    || crate::profile::current().legacy_linear_algebra
                    || st.dim() != n
                    || st.is_dense() != Stamper::want_dense(n)
                    || st.is_ordered() != Stamper::want_ordered(n)
            }
            None => true,
        };
        if stale {
            self.st = Some(Stamper::new(n));
        }
        (
            self.st.as_mut().expect("stamper just ensured"),
            &mut self.scratch,
        )
    }
}

/// Conductance used to clamp initial-condition nodes during the t = 0 solve.
pub(crate) const IC_CLAMP_SIEMENS: f64 = 1.0e4;

/// Integration history of the linear reactive elements, indexed by element
/// position in the circuit.
#[derive(Debug, Clone)]
pub(crate) struct LinearState {
    /// Per-capacitor `(v, i)` at the last accepted step.
    pub cap: Vec<(f64, f64)>,
    /// Per-inductor `(i, v)` at the last accepted step.
    pub ind: Vec<(f64, f64)>,
}

impl LinearState {
    /// Builds history from a converged DC solution: capacitor voltages from
    /// node voltages with zero current, inductor currents from branch
    /// unknowns with zero voltage.
    pub fn from_dc(ckt: &Circuit, x: &[f64]) -> LinearState {
        let sol = Solution::new(x);
        let branch_base = ckt.branch_base();
        let mut cap = vec![(0.0, 0.0); ckt.elements().len()];
        let mut ind = vec![(0.0, 0.0); ckt.elements().len()];
        for (idx, e) in ckt.elements().iter().enumerate() {
            match *e {
                Element::Capacitor { a, b, .. } => {
                    cap[idx] = (sol.v(a) - sol.v(b), 0.0);
                }
                Element::Inductor { branch, .. } => {
                    ind[idx] = (x[branch_base + branch], 0.0);
                }
                _ => {}
            }
        }
        LinearState { cap, ind }
    }

    /// Updates history after an accepted transient step.
    pub fn advance(&mut self, ckt: &Circuit, x: &[f64], dt: f64, backward_euler: bool) {
        let sol = Solution::new(x);
        let branch_base = ckt.branch_base();
        for (idx, e) in ckt.elements().iter().enumerate() {
            match *e {
                Element::Capacitor { a, b, farads } => {
                    let v_new = sol.v(a) - sol.v(b);
                    let (v_prev, i_prev) = self.cap[idx];
                    let i_new = if backward_euler {
                        farads / dt * (v_new - v_prev)
                    } else {
                        2.0 * farads / dt * (v_new - v_prev) - i_prev
                    };
                    self.cap[idx] = (v_new, i_new);
                }
                Element::Inductor {
                    branch, henries, ..
                } => {
                    let i_new = x[branch_base + branch];
                    let (i_prev, v_prev) = self.ind[idx];
                    let v_new = if backward_euler {
                        henries / dt * (i_new - i_prev)
                    } else {
                        2.0 * henries / dt * (i_new - i_prev) - v_prev
                    };
                    self.ind[idx] = (i_new, v_new);
                }
                _ => {}
            }
        }
    }
}

/// Stamps every linear element for the context `ctx` at candidate `x`.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidCircuit`] if a transient-mode assembly is
/// attempted without linear integration history.
pub(crate) fn load_linear(
    ckt: &Circuit,
    x: &[f64],
    ctx: &LoadContext,
    st: &mut Stamper,
    lin: Option<&LinearState>,
) -> Result<()> {
    if matches!(ctx.mode, Mode::Transient { .. }) && lin.is_none() {
        return Err(SpiceError::InvalidCircuit(
            "transient assembly requires linear integration state".into(),
        ));
    }
    let sol = Solution::new(x);
    let branch_base = ckt.branch_base();
    for (idx, e) in ckt.elements().iter().enumerate() {
        match *e {
            Element::Resistor { a, b, ohms } => {
                st.conductance(a, b, 1.0 / ohms, sol.v(a), sol.v(b));
            }
            Element::Capacitor { a, b, farads } => {
                match ctx.mode {
                    Mode::Dc => {} // open circuit in DC
                    Mode::Transient {
                        dt, backward_euler, ..
                    } => {
                        // `lin` is guaranteed Some in transient mode by the
                        // entry check above.
                        let (v_prev, i_prev) = match lin {
                            Some(s) => s.cap[idx],
                            None => (0.0, 0.0),
                        };
                        let (geq, ieq) = if backward_euler {
                            let g = farads / dt;
                            (g, -g * v_prev)
                        } else {
                            let g = 2.0 * farads / dt;
                            (g, -g * v_prev - i_prev)
                        };
                        // i = geq (va − vb) + ieq flowing a → b
                        let v = sol.v(a) - sol.v(b);
                        st.current(a, b, geq * v + ieq);
                        st.j_node(a, a, geq);
                        st.j_node(b, b, geq);
                        st.j_node(a, b, -geq);
                        st.j_node(b, a, -geq);
                    }
                }
            }
            Element::Inductor {
                a,
                b,
                branch,
                henries,
            } => {
                let br = branch_base + branch;
                let i = x[br];
                // Node rows carry the branch current a → b.
                st.f_node(a, i);
                st.f_node(b, -i);
                if let Some(r) = st.node_row(a) {
                    st.j(r, br, 1.0);
                }
                if let Some(r) = st.node_row(b) {
                    st.j(r, br, -1.0);
                }
                // Branch row: constitutive equation.
                match ctx.mode {
                    Mode::Dc => {
                        // Short circuit: v(a) − v(b) = 0.
                        st.f(br, sol.v(a) - sol.v(b));
                        if let Some(c) = st.node_row(a) {
                            st.j(br, c, 1.0);
                        }
                        if let Some(c) = st.node_row(b) {
                            st.j(br, c, -1.0);
                        }
                    }
                    Mode::Transient {
                        dt, backward_euler, ..
                    } => {
                        let (i_prev, v_prev) = match lin {
                            Some(s) => s.ind[idx],
                            None => (0.0, 0.0),
                        };
                        // v = req (i − i_prev) − v_hist
                        let (req, v_hist) = if backward_euler {
                            (henries / dt, 0.0)
                        } else {
                            (2.0 * henries / dt, v_prev)
                        };
                        let v = sol.v(a) - sol.v(b);
                        st.f(br, v - req * (i - i_prev) + v_hist);
                        if let Some(c) = st.node_row(a) {
                            st.j(br, c, 1.0);
                        }
                        if let Some(c) = st.node_row(b) {
                            st.j(br, c, -1.0);
                        }
                        st.j(br, br, -req);
                    }
                }
            }
            Element::VSource {
                p,
                m,
                ref wave,
                branch,
            } => {
                let br = branch_base + branch;
                let i = x[br];
                st.f_node(p, i);
                st.f_node(m, -i);
                if let Some(r) = st.node_row(p) {
                    st.j(r, br, 1.0);
                }
                if let Some(r) = st.node_row(m) {
                    st.j(r, br, -1.0);
                }
                let vs = wave.eval(ctx.time()) * ctx.source_scale;
                st.f(br, sol.v(p) - sol.v(m) - vs);
                if let Some(c) = st.node_row(p) {
                    st.j(br, c, 1.0);
                }
                if let Some(c) = st.node_row(m) {
                    st.j(br, c, -1.0);
                }
            }
            Element::ISource { from, to, ref wave } => {
                let i = wave.eval(ctx.time()) * ctx.source_scale;
                st.current(from, to, i);
            }
            Element::Vccs { op, om, cp, cm, gm } => {
                let i = gm * (sol.v(cp) - sol.v(cm));
                st.current(op, om, i);
                st.j_node(op, cp, gm);
                st.j_node(op, cm, -gm);
                st.j_node(om, cp, -gm);
                st.j_node(om, cm, gm);
            }
            Element::Vcvs {
                op,
                om,
                cp,
                cm,
                gain,
                branch,
            } => {
                let br = branch_base + branch;
                let i = x[br];
                st.f_node(op, i);
                st.f_node(om, -i);
                if let Some(r) = st.node_row(op) {
                    st.j(r, br, 1.0);
                }
                if let Some(r) = st.node_row(om) {
                    st.j(r, br, -1.0);
                }
                st.f(br, sol.v(op) - sol.v(om) - gain * (sol.v(cp) - sol.v(cm)));
                for (node, sign) in [(op, 1.0), (om, -1.0), (cp, -gain), (cm, gain)] {
                    if let Some(c) = st.node_row(node) {
                        st.j(br, c, sign);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Stamps Norton clamps that force `v(node) = value` during the t = 0 solve.
pub(crate) fn load_ic_clamps(clamps: &[(NodeId, f64)], x: &[f64], st: &mut Stamper) {
    let sol = Solution::new(x);
    for &(node, value) in clamps {
        if node.is_ground() {
            continue;
        }
        let g = IC_CLAMP_SIEMENS;
        st.f_node(node, g * (sol.v(node) - value));
        st.j_node(node, node, g);
    }
}

/// Assembles the full system (linear elements, devices, solver stamps) at
/// candidate `x`, with section attribution for non-finite detection.
///
/// Device loads go through the circuit's batch plan (gather → one shared
/// evaluation per batch → per-device scatter in original order) unless
/// [`SolveProfile::scalar_device_eval`] pins the one-at-a-time loop or no
/// device is batchable. Both paths stamp the identical call sequence, so
/// the assembled system is bitwise the same either way. Time spent in the
/// device section is attributed to [`SolverStats::device_eval_ns`].
///
/// [`SolveProfile::scalar_device_eval`]:
///     crate::profile::SolveProfile::scalar_device_eval
/// [`SolverStats::device_eval_ns`]: crate::stats::SolverStats::device_eval_ns
fn assemble(
    ckt: &Circuit,
    x: &[f64],
    ctx: &LoadContext,
    st: &mut Stamper,
    scratch: &mut Vec<EvalBatch>,
    lin: Option<&LinearState>,
    ic_clamps: Option<&[(NodeId, f64)]>,
) -> Result<()> {
    st.clear();
    st.set_section(StampSection::Linear);
    load_linear(ckt, x, ctx, st, lin)?;
    let devices = ckt.devices();
    if !devices.is_empty() {
        let eval_start = Instant::now();
        let sol = Solution::new(x);
        let plan = if crate::profile::current().scalar_device_eval {
            None
        } else {
            ckt.batch_plan()
        };
        match plan {
            Some(plan) => {
                scratch.resize_with(plan.batches.len(), EvalBatch::new);
                for (b, members) in plan.batches.iter().enumerate() {
                    let batch = &mut scratch[b];
                    batch.clear();
                    for &i in members {
                        devices[i].batch_gather(&sol, batch);
                    }
                    devices[members[0]].batch_eval(ctx, batch);
                }
                for (i, dev) in devices.iter().enumerate() {
                    st.set_section(StampSection::Device(i));
                    match plan.membership[i] {
                        Some((b, lane)) => dev.batch_scatter(lane, &scratch[b], &sol, ctx, st),
                        None => dev.load(&sol, ctx, st),
                    }
                }
                crate::stats::count_batched_eval();
            }
            None => {
                for (i, dev) in devices.iter().enumerate() {
                    st.set_section(StampSection::Device(i));
                    dev.load(&sol, ctx, st);
                }
            }
        }
        crate::stats::count_device_eval_ns(eval_start.elapsed().as_nanos() as u64);
    }
    st.set_section(StampSection::Solver);
    st.gmin_shunts(ctx.gmin, ckt.num_node_unknowns(), x);
    if let Some(clamps) = ic_clamps {
        load_ic_clamps(clamps, x, st);
    }
    Ok(())
}

/// Maps a bare singular-matrix failure from the linear solver to a
/// [`SpiceError::SingularSystem`] naming the circuit unknown whose pivot
/// column collapsed.
fn attribute_singular(ckt: &Circuit, e: SpiceError, time: f64) -> SpiceError {
    match e {
        SpiceError::Numeric(NumericError::SingularMatrix { column, pivot }) => {
            SpiceError::SingularSystem {
                column,
                unknown: crate::guard::unknown_name(ckt, column),
                pivot,
                time,
            }
        }
        other => other,
    }
}

/// Post-solve KCL audit: re-assembles the residual at the converged point
/// and fails if any node row carries more than the configured tolerance in
/// amperes. A no-op unless [`crate::guard::kcl_tolerance`] is set.
fn kcl_audit(
    ckt: &Circuit,
    x: &[f64],
    ctx: &LoadContext,
    st: &mut Stamper,
    scratch: &mut Vec<EvalBatch>,
    lin: Option<&LinearState>,
    ic_clamps: Option<&[(NodeId, f64)]>,
) -> Result<()> {
    let Some(tol) = crate::guard::kcl_tolerance() else {
        return Ok(());
    };
    assemble(ckt, x, ctx, st, scratch, lin, ic_clamps)?;
    let nn = ckt.num_node_unknowns();
    let (worst, residual) =
        st.residual()
            .iter()
            .take(nn)
            .enumerate()
            .fold(
                (0, 0.0),
                |(wi, wv), (i, &v)| {
                    if v.abs() > wv {
                        (i, v.abs())
                    } else {
                        (wi, wv)
                    }
                },
            );
    if residual > tol {
        crate::stats::count_nonconvergence();
        return Err(SpiceError::KclViolation {
            node: crate::guard::unknown_name(ckt, worst),
            residual,
            tol,
            time: ctx.time(),
        });
    }
    Ok(())
}

/// One full Newton solve of the circuit equations at the given context.
///
/// `x` enters as the initial guess and exits as the converged solution.
/// Returns the number of Newton iterations used.
pub(crate) fn newton_solve(
    ckt: &Circuit,
    x: &mut [f64],
    ctx: &LoadContext,
    opts: &NewtonOptions,
    lin: Option<&LinearState>,
    ic_clamps: Option<&[(NodeId, f64)]>,
    ws: &mut Workspace,
) -> Result<usize> {
    let n = x.len();
    let mut eff_opts = *opts;
    eff_opts.max_iter = crate::profile::current().effective_max_iter(eff_opts.max_iter);
    let opts = &eff_opts;
    let mut solver = NewtonSolver::new(*opts);
    if let Some(flag) = crate::budget::flag() {
        solver.attach_interrupt(flag);
    }
    // A circuit without nonlinear devices assembles a Jacobian that is a
    // pure function of this key (candidate `x`, time, and source scaling
    // move only the RHS), so the factorization can be bypassed when the
    // key repeats. Fault injection perturbs the matrix out-of-band and
    // disqualifies the bypass outright.
    let key = if ckt.devices().is_empty() && !crate::faults::active() {
        let (transient, dt_bits, backward_euler) = match ctx.mode {
            Mode::Dc => (false, 0, false),
            Mode::Transient {
                dt, backward_euler, ..
            } => (true, dt.to_bits(), backward_euler),
        };
        Some(JacobianKey {
            transient,
            dt_bits,
            backward_euler,
            gmin_bits: ctx.gmin.to_bits(),
            ic_clamps: ic_clamps.is_some(),
        })
    } else {
        None
    };
    let (st, scratch) = ws.parts(n);
    loop {
        // Budget poll: publishes the heartbeat and fails the solve with a
        // typed interrupt error if a deadline, cap, or cancellation
        // tripped. Inert unless a budget scope is installed.
        if let Err(e) = crate::budget::poll(ctx.time(), solver.iterations() as u64) {
            crate::stats::count_newton_iterations(solver.iterations() as u64);
            return Err(e);
        }
        assemble(ckt, x, ctx, st, scratch, lin, ic_clamps)?;

        // Fault injection — inert (a thread-local load) unless a plan is
        // installed by a test or soak driver.
        match crate::faults::newton_fault() {
            None | Some(FaultKind::TimestepStorm) => {}
            Some(FaultKind::NanResidual) => {
                st.set_section(StampSection::Fault);
                st.f(crate::faults::singular_row(n), f64::NAN);
            }
            Some(FaultKind::SingularPivot) => {
                st.make_singular(crate::faults::singular_row(n));
            }
            Some(FaultKind::JacobianPerturb { relative }) => {
                st.scale_jacobian(|| crate::faults::perturb_factor(relative));
            }
        }

        // Health guard: a NaN/Inf stamped anywhere in this assembly fails
        // the solve with device and node attribution instead of reaching
        // the factorization.
        if let Some(note) = st.non_finite() {
            crate::stats::count_newton_iterations(solver.iterations() as u64);
            crate::stats::count_nonconvergence();
            return Err(crate::guard::non_finite_error(ckt, note, ctx.time()));
        }

        let solve_start = Instant::now();
        let solved = st.solve_with_key(key);
        crate::stats::count_linear_solve_ns(solve_start.elapsed().as_nanos() as u64);
        let dx = match solved {
            Ok(dx) => dx,
            Err(e) => {
                crate::stats::count_newton_iterations(solver.iterations() as u64);
                crate::stats::count_nonconvergence();
                return Err(attribute_singular(ckt, e, ctx.time()));
            }
        };
        if !dx.iter().all(|v| v.is_finite()) {
            crate::stats::count_newton_iterations(solver.iterations() as u64);
            crate::stats::count_nonconvergence();
            return Err(SpiceError::NoConvergence {
                analysis: "newton",
                time: ctx.time(),
                detail: "non-finite Newton update".into(),
            });
        }
        match solver.apply_step(x, &dx) {
            NewtonStatus::Converged => {
                crate::stats::count_newton_iterations(solver.iterations() as u64);
                kcl_audit(ckt, x, ctx, st, scratch, lin, ic_clamps)?;
                return Ok(solver.iterations());
            }
            NewtonStatus::Interrupted(kind) => {
                let pending = solver.iterations() as u64;
                crate::stats::count_newton_iterations(pending);
                return Err(crate::budget::interrupted(kind, ctx.time(), 0));
            }
            NewtonStatus::Continue => {
                if solver.exhausted() {
                    crate::stats::count_newton_iterations(solver.iterations() as u64);
                    crate::stats::count_nonconvergence();
                    return Err(SpiceError::NoConvergence {
                        analysis: "newton",
                        time: ctx.time(),
                        detail: format!(
                            "no convergence after {} iterations (last |Δx| = {:.3e})",
                            solver.iterations(),
                            solver.last_update_norm()
                        ),
                    });
                }
            }
        }
    }
}
