//! Adaptive transient analysis (trapezoidal / backward Euler).

use nemscmos_numeric::newton::NewtonOptions;

use super::engine::{newton_solve, LinearState, Workspace};
use super::op::{op_vector, OpOptions};
use crate::circuit::Circuit;
use crate::device::{LoadContext, Mode, Solution};
use crate::element::Element;
use crate::result::TranResult;
use crate::{Result, SpiceError};

/// Time-integration method for the bulk of the transient.
///
/// The first step after every source breakpoint always uses backward
/// Euler to damp the discontinuity, regardless of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Second-order trapezoidal rule (default; more accurate).
    #[default]
    Trapezoidal,
    /// First-order backward Euler (more damped; use for stiff switching
    /// studies where trapezoidal ringing is a concern).
    BackwardEuler,
}

/// Options for [`transient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranOptions {
    /// Integration method (see [`IntegrationMethod`]).
    pub method: IntegrationMethod,
    /// Initial / post-breakpoint step size. Default: `tstop / 50_000`.
    pub dt_init: Option<f64>,
    /// Maximum step size. Default: `tstop / 500`.
    pub dt_max: Option<f64>,
    /// Local-truncation-error target on node voltages per step (volts).
    pub lte_tol: f64,
    /// Newton settings per time step.
    pub newton: NewtonOptions,
    /// Convergence shunt (siemens).
    pub gmin: f64,
    /// Hard cap on accepted + rejected steps.
    pub max_steps: usize,
    /// If true, skip the t = 0 operating point and start from all-zero
    /// state plus the registered initial conditions (SPICE `UIC`).
    pub use_ic_only: bool,
}

impl Default for TranOptions {
    fn default() -> Self {
        TranOptions {
            method: IntegrationMethod::Trapezoidal,
            dt_init: None,
            dt_max: None,
            lte_tol: 2e-3,
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            max_steps: 2_000_000,
            use_ic_only: false,
        }
    }
}

/// Collects and sorts the time discontinuities of all sources.
fn collect_breakpoints(ckt: &Circuit, tstop: f64) -> Vec<f64> {
    let mut bps = vec![tstop];
    for e in ckt.elements() {
        match e {
            Element::VSource { wave, .. } | Element::ISource { wave, .. } => {
                wave.breakpoints(tstop, &mut bps);
            }
            _ => {}
        }
    }
    bps.retain(|&t| t > 0.0 && t <= tstop);
    bps.sort_by(f64::total_cmp);
    // Deduplicate within a relative tolerance.
    let eps = tstop * 1e-12;
    bps.dedup_by(|a, b| (*a - *b).abs() <= eps);
    bps
}

/// Runs a transient analysis from `t = 0` to `tstop`.
///
/// The initial state is the DC operating point at `t = 0` (with any
/// registered initial conditions clamped), then the circuit is integrated
/// with adaptive step control: steps are rejected and halved when the
/// predictor/corrector disagreement on node voltages exceeds
/// `opts.lte_tol`, and forced to land on every source breakpoint.
///
/// Device dynamic state is reset at the start, and committed after every
/// accepted step.
///
/// # Errors
///
/// Returns [`SpiceError::NoConvergence`] if Newton fails at the minimum
/// step size or the step budget is exhausted, and propagates operating-
/// point and netlist errors.
pub fn transient(ckt: &mut Circuit, tstop: f64, opts: &TranOptions) -> Result<TranResult> {
    if !(tstop.is_finite() && tstop > 0.0) {
        return Err(SpiceError::InvalidCircuit(format!(
            "bad transient stop time {tstop}"
        )));
    }
    ckt.validate()?;
    ckt.reset_device_state();
    let n = ckt.num_unknowns();

    // Harness retry-ladder overrides (neutral unless a rung is active).
    let prof = crate::profile::current();
    let gmin = prof.effective_gmin(opts.gmin);
    let method = if prof.force_backward_euler {
        IntegrationMethod::BackwardEuler
    } else {
        opts.method
    };

    // --- Initial state at t = 0. ---
    let op_opts = OpOptions {
        gmin,
        newton: opts.newton,
        max_state_loops: 8,
    };
    // One linear-algebra workspace for the whole run: the t = 0 operating
    // point and every timestep share the frozen assembly pattern and
    // cached factorizations.
    let mut ws = Workspace::new();
    let ics: Vec<_> = ckt.ics().to_vec();
    let mut x = if opts.use_ic_only {
        let mut x0 = vec![0.0; n];
        for dev in ckt.devices() {
            dev.initial_guess(&mut x0);
        }
        for &(node, v) in &ics {
            if !node.is_ground() {
                x0[node.index() - 1] = v;
            }
        }
        x0
    } else {
        let clamps = if ics.is_empty() {
            None
        } else {
            Some(ics.as_slice())
        };
        op_vector(ckt, &op_opts, None, clamps, &mut ws)?
    };

    let mut lin = LinearState::from_dc(ckt, &x);
    let mut result = TranResult::new(ckt.num_node_unknowns(), ckt.branch_base());
    result.push(0.0, &x);

    let breakpoints = collect_breakpoints(ckt, tstop);
    let dt_max = opts.dt_max.unwrap_or(tstop / 500.0);
    let dt_init = opts.dt_init.unwrap_or(tstop / 50_000.0).min(dt_max);
    let dt_min = tstop * 1e-13;
    let snap_eps = tstop * 1e-12;

    let mut t = 0.0;
    let mut dt = dt_init;
    let mut bp_idx = 0usize;
    // Previous accepted solution (for the LTE predictor).
    let mut x_prev = x.clone();
    let mut dt_prev = 0.0f64;
    let mut force_be = true; // first step from DC uses backward Euler
    let mut steps = 0usize;
    // Most recent Newton failure, kept so an eventual give-up (step
    // underflow / budget exhaustion) can surface the root cause — and so
    // typed health diagnostics are returned as themselves rather than
    // buried in a generic non-convergence message.
    let mut last_err: Option<SpiceError> = None;
    let give_up = |t: f64, last_err: &mut Option<SpiceError>, detail: String| match last_err.take()
    {
        Some(
            e @ (SpiceError::NonFinite { .. }
            | SpiceError::SingularSystem { .. }
            | SpiceError::KclViolation { .. }),
        ) => e,
        Some(e) => SpiceError::NoConvergence {
            analysis: "transient",
            time: t,
            detail: format!("{detail}; last solver error: {e}"),
        },
        None => SpiceError::NoConvergence {
            analysis: "transient",
            time: t,
            detail,
        },
    };

    while t < tstop - snap_eps {
        steps += 1;
        if steps > opts.max_steps {
            return Err(give_up(
                t,
                &mut last_err,
                format!("step budget of {} exhausted", opts.max_steps),
            ));
        }
        // Advance past any breakpoints we've already reached.
        while bp_idx < breakpoints.len() && breakpoints[bp_idx] <= t + snap_eps {
            bp_idx += 1;
        }
        // Clamp the step to the next breakpoint.
        let mut dt_step = dt.min(dt_max);
        let mut hit_bp = false;
        if bp_idx < breakpoints.len() {
            let to_bp = breakpoints[bp_idx] - t;
            if dt_step >= to_bp - snap_eps {
                dt_step = to_bp;
                hit_bp = true;
            }
        }
        if dt_step < dt_min {
            return Err(give_up(
                t,
                &mut last_err,
                format!("step size underflow (dt = {dt_step:.3e})"),
            ));
        }

        let t_new = t + dt_step;
        let backward_euler = force_be || method == IntegrationMethod::BackwardEuler;
        let ctx = LoadContext {
            mode: Mode::Transient {
                time: t_new,
                dt: dt_step,
                backward_euler,
            },
            gmin,
            source_scale: 1.0,
        };

        // Newton from the previous solution.
        let mut x_try = x.clone();
        match newton_solve(
            ckt,
            &mut x_try,
            &ctx,
            &opts.newton,
            Some(&lin),
            None,
            &mut ws,
        ) {
            Ok(_) => {}
            // A budget interrupt is a stop order, not a convergence
            // failure: shrinking the step and retrying would spin the
            // controller against an expired deadline forever.
            Err(e) if e.is_interrupt() => return Err(e),
            Err(e) => {
                // Shrink and retry.
                crate::stats::count_step_rejection();
                last_err = Some(e);
                dt = dt_step / 8.0;
                force_be = true;
                continue;
            }
        }

        // Fault injection: a timestep-rejection storm discards steps that
        // converged cleanly, driving the controller toward underflow.
        if crate::faults::step_fault() {
            crate::stats::count_step_rejection();
            dt = dt_step / 8.0;
            force_be = true;
            continue;
        }

        // Local truncation estimate: disagreement between the linear
        // predictor (from the last two accepted points) and the corrector.
        let nv = ckt.num_node_unknowns();
        let mut err = 0.0f64;
        if dt_prev > 0.0 {
            let r = dt_step / dt_prev;
            for i in 0..nv {
                let pred = x[i] + (x[i] - x_prev[i]) * r;
                err = err.max((x_try[i] - pred).abs());
            }
        }
        if err > 8.0 * opts.lte_tol && dt_step > 4.0 * dt_min && !hit_bp {
            crate::stats::count_step_rejection();
            dt = dt_step * 0.5;
            continue;
        }

        // Accept the step.
        crate::stats::count_step_accepted();
        crate::budget::pulse_accepted_step(t_new);
        let sol = Solution::new(&x_try);
        let mut state_changed = false;
        for dev in ckt.devices_mut() {
            state_changed |= dev.commit(&sol, &ctx);
        }
        lin.advance(ckt, &x_try, dt_step, backward_euler);
        x_prev = std::mem::replace(&mut x, x_try);
        dt_prev = dt_step;
        t = t_new;
        result.push(t, &x);

        // Step-size adaptation.
        let grow = if err <= f64::EPSILON {
            2.0
        } else {
            (opts.lte_tol / err).sqrt().clamp(0.4, 2.0)
        };
        dt = (dt_step * grow).min(dt_max);
        if hit_bp || state_changed {
            // Restart small after a discontinuity — a source breakpoint or
            // a discrete device-state flip (NEMS pull-in/release) — and
            // damp it with backward Euler.
            dt = dt_init;
            force_be = true;
        } else {
            force_be = false;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::waveform::Waveform;

    #[test]
    fn rc_charge_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-9); // tau = 1 µs
        let res = transient(&mut ckt, 5e-6, &TranOptions::default()).unwrap();
        let v = res.voltage(out);
        for &t in &[0.5e-6, 1e-6, 2e-6, 4e-6] {
            let expect = 1.0 - (-t / 1e-6_f64).exp();
            assert!(
                (v.eval(t) - expect).abs() < 5e-3,
                "t = {t}: got {}, expected {expect}",
                v.eval(t)
            );
        }
    }

    #[test]
    fn rl_current_rise_matches_analytic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        ckt.resistor(a, b, 1e3);
        ckt.inductor(b, Circuit::GROUND, 1e-3); // tau = L/R = 1 µs
        let res = transient(&mut ckt, 5e-6, &TranOptions::default()).unwrap();
        let i = res.source_current(v);
        // Through-source current is −i_load by convention.
        let t = 2e-6;
        let expect = -(1e-3) * (1.0 - (-t / 1e-6_f64).exp());
        assert!((i.eval(t) - expect).abs() < 5e-6);
    }

    #[test]
    fn lc_oscillator_conserves_frequency() {
        // 1 V initial condition on C, ringing through L: f = 1/(2π√(LC)).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.capacitor(a, Circuit::GROUND, 1e-9);
        ckt.inductor(a, Circuit::GROUND, 1e-6);
        // A large resistor keeps the matrix well-posed.
        ckt.resistor(a, Circuit::GROUND, 1e9);
        ckt.set_ic(a, 1.0);
        // A DC clamp would fight the inductor short; start from the IC
        // directly (SPICE UIC).
        let opts = TranOptions {
            lte_tol: 1e-4,
            use_ic_only: true,
            ..Default::default()
        };
        let period = 2.0 * std::f64::consts::PI * (1e-9f64 * 1e-6).sqrt(); // ≈ 199 ns
        let res = transient(&mut ckt, 3.0 * period, &opts).unwrap();
        let v = res.voltage(a);
        // Initial condition respected.
        assert!((v.values()[0] - 1.0).abs() < 1e-3);
        // First falling zero crossing at period/4.
        let t_zero = v
            .crossing_falling(0.0, 0.0)
            .expect("oscillation crosses zero");
        assert!(
            (t_zero - period / 4.0).abs() < period * 0.02,
            "zero at {t_zero}, expected {}",
            period / 4.0
        );
    }

    #[test]
    fn pulse_source_edges_are_resolved() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(
            a,
            Circuit::GROUND,
            Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 2e-9, 10e-9),
        );
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = transient(&mut ckt, 5e-9, &TranOptions::default()).unwrap();
        let v = res.voltage(a);
        // Mid-rise exactly at 1.05 ns thanks to breakpoint snapping.
        assert!((v.eval(1.05e-9) - 0.5).abs() < 0.05);
        assert!((v.eval(2e-9) - 1.0).abs() < 1e-6);
        assert!(v.eval(0.5e-9).abs() < 1e-6);
    }

    #[test]
    fn breakpoint_exactly_at_tstop_is_merged_and_terminates() {
        // A pulse whose rising edge starts exactly at tstop: the source
        // breakpoint coincides with the implicit tstop breakpoint. The
        // dedup in collect_breakpoints must merge them so the final step
        // lands on tstop once, with no zero-length step or underflow.
        let tstop = 5e-9;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(
            a,
            Circuit::GROUND,
            Waveform::pulse(0.0, 1.0, tstop, 0.1e-9, 0.1e-9, 2e-9, 10e-9),
        );
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let bps = collect_breakpoints(&ckt, tstop);
        assert_eq!(
            bps.iter()
                .filter(|&&t| (t - tstop).abs() <= tstop * 1e-12)
                .count(),
            1,
            "tstop breakpoint must be deduplicated: {bps:?}"
        );
        let res = transient(&mut ckt, tstop, &TranOptions::default()).unwrap();
        let va = res.voltage(a);
        let t_end = *va.times().last().unwrap();
        assert!((t_end - tstop).abs() <= tstop * 1e-9, "ended at {t_end}");
        // The pulse never rose before tstop.
        assert!(res.voltage(a).last_value().abs() < 1e-6);
    }

    #[test]
    fn breakpoints_within_one_snap_eps_collapse() {
        // Two sources with edges 0.4·snap_eps apart (snap_eps = tstop·1e-12):
        // the dedup tolerance equals snap_eps, so they must collapse into a
        // single breakpoint — otherwise the clamp logic would be forced
        // into a dt below dt_min between them. The run must complete with
        // strictly increasing time points.
        let tstop = 1e-6;
        let snap_eps = tstop * 1e-12;
        let t0 = 0.3e-6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(
            a,
            Circuit::GROUND,
            Waveform::pulse(0.0, 1.0, t0, 1e-9, 1e-9, 0.2e-6, 1e-3),
        );
        ckt.vsource(
            b,
            Circuit::GROUND,
            Waveform::pulse(0.0, 1.0, t0 + 0.4 * snap_eps, 1e-9, 1e-9, 0.2e-6, 1e-3),
        );
        ckt.resistor(a, Circuit::GROUND, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);
        let bps = collect_breakpoints(&ckt, tstop);
        assert_eq!(
            bps.iter()
                .filter(|&&t| (t - t0).abs() <= 2.0 * snap_eps)
                .count(),
            1,
            "near-coincident breakpoints must be deduplicated: {bps:?}"
        );
        for w in bps.windows(2) {
            assert!(
                w[1] - w[0] > snap_eps,
                "breakpoints closer than snap_eps: {bps:?}"
            );
        }
        let res = transient(&mut ckt, tstop, &TranOptions::default()).unwrap();
        let va = res.voltage(a);
        for w in va.times().windows(2) {
            assert!(w[1] > w[0], "non-increasing time points {w:?}");
        }
        // Mid-pulse both sources are high; after the pulse both are low.
        assert!((va.eval(0.4e-6) - 1.0).abs() < 1e-3);
        assert!(va.last_value().abs() < 1e-3);
    }

    #[test]
    fn rejects_bad_stop_time() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1.0);
        assert!(transient(&mut ckt, -1.0, &TranOptions::default()).is_err());
        assert!(transient(&mut ckt, f64::NAN, &TranOptions::default()).is_err());
    }

    #[test]
    fn uic_starts_from_initial_conditions() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GROUND, 1e3);
        ckt.capacitor(a, Circuit::GROUND, 1e-9);
        ckt.set_ic(a, 2.0);
        let opts = TranOptions {
            use_ic_only: true,
            ..Default::default()
        };
        let res = transient(&mut ckt, 1e-6, &opts).unwrap();
        let v = res.voltage(a);
        assert!((v.values()[0] - 2.0).abs() < 1e-9);
        // Decays toward zero with tau = 1 µs.
        let expect = 2.0 * (-1.0f64).exp();
        assert!((v.last_value() - expect).abs() < 2e-2);
    }
}
