//! DC sweep with warm-starting and device-state continuation.

use super::engine::Workspace;
use super::op::{op_vector, OpOptions};
use crate::circuit::Circuit;
use crate::element::SourceRef;
use crate::result::OpResult;
use crate::{Result, SpiceError};

/// Sweeps the DC value of `src` through `values`, solving an operating
/// point at each step.
///
/// Each point warm-starts from the previous solution and *commits* device
/// state between points, so hysteretic devices (NEMS switches) follow the
/// sweep direction — sweeping up and then down traces both branches of a
/// hysteresis loop.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidCircuit`] if `values` is empty and
/// propagates convergence failures (annotated with the failing sweep
/// value).
pub fn dc_sweep(
    ckt: &mut Circuit,
    src: SourceRef,
    values: &[f64],
    opts: &OpOptions,
) -> Result<Vec<OpResult>> {
    dc_sweep_seeded(ckt, src, values, &[], opts)
}

/// [`dc_sweep`] with node-voltage seeds applied to the *first* point —
/// required when sweeping a bistable circuit (e.g. finding an SRAM write
/// trip point): the seeds select the starting attractor, and warm-started
/// continuation follows it through the sweep.
///
/// # Errors
///
/// See [`dc_sweep`]; additionally rejects seeds naming nodes outside the
/// circuit.
pub fn dc_sweep_seeded(
    ckt: &mut Circuit,
    src: SourceRef,
    values: &[f64],
    seeds: &[(crate::element::NodeId, f64)],
    opts: &OpOptions,
) -> Result<Vec<OpResult>> {
    if values.is_empty() {
        return Err(SpiceError::InvalidCircuit(
            "empty DC sweep value list".into(),
        ));
    }
    // One workspace across all sweep points: the matrix of a device-free
    // circuit does not change with the swept source value, so subsequent
    // points reuse the factorization outright.
    let mut ws = Workspace::new();
    let mut results = Vec::with_capacity(values.len());
    let mut prev: Option<Vec<f64>> = if seeds.is_empty() {
        None
    } else {
        let n = ckt.num_unknowns();
        let mut guess = vec![0.0; n];
        for &(node, v) in seeds {
            if node.is_ground() {
                continue;
            }
            let idx = node.index() - 1;
            if idx >= ckt.num_node_unknowns() {
                return Err(SpiceError::InvalidCircuit(format!(
                    "seed node index {} outside circuit",
                    node.index()
                )));
            }
            guess[idx] = v;
        }
        Some(guess)
    };
    for &v in values {
        // Budget check between points: a sweep of many cheap op solves
        // should still honour a cancellation/deadline promptly even when
        // no individual solve runs long. Interrupt errors from inside
        // op_vector pass through the map_err below untouched.
        crate::budget::poll(0.0, 0)?;
        ckt.set_vsource_dc(src, v)?;
        let x = op_vector(ckt, opts, prev.as_deref(), None, &mut ws).map_err(|e| match e {
            SpiceError::NoConvergence {
                analysis,
                time,
                detail,
            } => SpiceError::NoConvergence {
                analysis,
                time,
                detail: format!("at sweep value {v}: {detail}"),
            },
            other => other,
        })?;
        results.push(OpResult::new(
            x.clone(),
            ckt.num_node_unknowns(),
            ckt.branch_base(),
        ));
        prev = Some(x);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn sweep_tracks_divider_linearly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);
        let values = [0.0, 0.5, 1.0, 1.5, 2.0];
        let results = dc_sweep(&mut ckt, v, &values, &OpOptions::default()).unwrap();
        assert_eq!(results.len(), values.len());
        for (res, &vin) in results.iter().zip(values.iter()) {
            assert!((res.voltage(b) - vin / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource(a, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        assert!(dc_sweep(&mut ckt, v, &[], &OpOptions::default()).is_err());
    }
}
