//! Circuit analyses: operating point, DC sweep, AC small-signal, and
//! transient.

pub mod ac;
pub mod dc_sweep;
mod engine;
pub mod op;
pub mod probe;
pub mod tran;

pub use ac::{ac, log_sweep, AcResult};
pub use dc_sweep::{dc_sweep, dc_sweep_seeded};
pub use op::{op, op_seeded, op_with, OpOptions};
pub use probe::{dc_jacobian, SystemProbe};
pub use tran::{transient, IntegrationMethod, TranOptions};
