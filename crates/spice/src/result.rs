//! Analysis results: operating points, transient traces, and probes.

use crate::circuit::Circuit;
use crate::element::{Element, ElementId, NodeId, SourceRef};
use crate::{Result, SpiceError};

/// A sampled time-domain signal (one probe of a transient result).
///
/// # Example
///
/// ```
/// use nemscmos_spice::result::Trace;
///
/// let tr = Trace::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 2.0]);
/// assert_eq!(tr.eval(0.5), 1.0);
/// assert_eq!(tr.crossing_rising(1.0, 0.0), Some(0.5));
/// assert_eq!(tr.last_value(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Trace {
    /// Creates a trace from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, are empty, or the times are
    /// not strictly increasing.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Trace {
        assert_eq!(times.len(), values.len(), "trace length mismatch");
        assert!(!times.is_empty(), "empty trace");
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "trace times must be strictly increasing"
        );
        Trace { times, values }
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Always false (a trace has at least one sample).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Value at the final sample.
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("trace is never empty")
    }

    /// First sample time.
    pub fn t_start(&self) -> f64 {
        self.times[0]
    }

    /// Last sample time.
    pub fn t_end(&self) -> f64 {
        *self.times.last().expect("trace is never empty")
    }

    /// Linear interpolation at time `t`, clamped to the end values.
    pub fn eval(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= self.t_end() {
            return self.last_value();
        }
        let idx = self.times.partition_point(|&x| x <= t);
        let (t0, v0) = (self.times[idx - 1], self.values[idx - 1]);
        let (t1, v1) = (self.times[idx], self.values[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Earliest time `>= from` at which the signal crosses `level` while
    /// rising, or `None`.
    pub fn crossing_rising(&self, level: f64, from: f64) -> Option<f64> {
        self.crossing_dir(level, from, true)
    }

    /// Earliest time `>= from` at which the signal crosses `level` while
    /// falling, or `None`.
    pub fn crossing_falling(&self, level: f64, from: f64) -> Option<f64> {
        self.crossing_dir(level, from, false)
    }

    fn crossing_dir(&self, level: f64, from: f64, rising: bool) -> Option<f64> {
        for i in 1..self.times.len() {
            if self.times[i] < from {
                continue;
            }
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            let crosses = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crosses {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let t = t0 + (t1 - t0) * (level - v0) / (v1 - v0);
                if t >= from {
                    return Some(t);
                }
            }
        }
        None
    }

    /// Trapezoidal integral of the signal over its full span.
    pub fn integral(&self) -> f64 {
        nemscmos_numeric::interp::trapezoid(&self.times, &self.values)
    }

    /// Trapezoidal integral over `[t0, t1]` (clamped to the trace span).
    pub fn integral_between(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut prev_t = t0.max(self.t_start());
        let mut prev_v = self.eval(prev_t);
        for (&t, &v) in self.times.iter().zip(self.values.iter()) {
            if t <= prev_t {
                continue;
            }
            if t >= t1 {
                break;
            }
            acc += 0.5 * (v + prev_v) * (t - prev_t);
            prev_t = t;
            prev_v = v;
        }
        let end = t1.min(self.t_end());
        if end > prev_t {
            acc += 0.5 * (self.eval(end) + prev_v) * (end - prev_t);
        }
        acc
    }

    /// Minimum sample value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum over `[t0, t1]` of the linear interpolant.
    pub fn min_between(&self, t0: f64, t1: f64) -> f64 {
        let mut m = self.eval(t0).min(self.eval(t1));
        for (&t, &v) in self.times.iter().zip(self.values.iter()) {
            if t >= t0 && t <= t1 {
                m = m.min(v);
            }
        }
        m
    }

    /// Maximum over `[t0, t1]` of the linear interpolant.
    pub fn max_between(&self, t0: f64, t1: f64) -> f64 {
        let mut m = self.eval(t0).max(self.eval(t1));
        for (&t, &v) in self.times.iter().zip(self.values.iter()) {
            if t >= t0 && t <= t1 {
                m = m.max(v);
            }
        }
        m
    }

    /// Pointwise product with another trace sampled on this trace's time
    /// base (the other trace is interpolated).
    pub fn multiply(&self, other: &Trace) -> Trace {
        let values = self
            .times
            .iter()
            .zip(self.values.iter())
            .map(|(&t, &v)| v * other.eval(t))
            .collect();
        Trace {
            times: self.times.clone(),
            values,
        }
    }

    /// Pointwise scaling by a constant.
    pub fn scale(&self, k: f64) -> Trace {
        Trace {
            times: self.times.clone(),
            values: self.values.iter().map(|&v| v * k).collect(),
        }
    }
}

/// The solution of a DC operating-point analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct OpResult {
    x: Vec<f64>,
    num_node_unknowns: usize,
    branch_base: usize,
}

impl OpResult {
    pub(crate) fn new(x: Vec<f64>, num_node_unknowns: usize, branch_base: usize) -> OpResult {
        OpResult {
            x,
            num_node_unknowns,
            branch_base,
        }
    }

    /// Voltage of node `n` (`0.0` for ground).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside this result's layout.
    pub fn voltage(&self, n: NodeId) -> f64 {
        if n.is_ground() {
            0.0
        } else {
            self.x[n.index() - 1]
        }
    }

    /// Current through a voltage source, flowing from its `+` terminal
    /// *through the source* to its `−` terminal (SPICE convention: a
    /// discharging battery shows negative current).
    pub fn source_current(&self, s: SourceRef) -> f64 {
        self.x[self.branch_base + s.branch]
    }

    /// The raw unknown vector.
    pub fn raw(&self) -> &[f64] {
        &self.x
    }

    /// DC current through a linear element, flowing from its first to its
    /// second terminal: `(v_a − v_b)/R` for resistors, `0` for capacitors
    /// (open in DC), the branch unknown for inductors.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for element kinds without a
    /// single well-defined two-terminal current (sources and controlled
    /// sources — probe those via [`OpResult::source_current`]).
    pub fn element_current(&self, ckt: &Circuit, id: ElementId) -> Result<f64> {
        match ckt.elements().get(id.0) {
            Some(Element::Resistor { a, b, ohms }) => {
                Ok((self.voltage(*a) - self.voltage(*b)) / ohms)
            }
            Some(Element::Capacitor { .. }) => Ok(0.0),
            Some(Element::Inductor { branch, .. }) => Ok(self.x[self.branch_base + branch]),
            Some(other) => Err(SpiceError::UnknownProbe(format!(
                "element current probe not supported for {other:?}"
            ))),
            None => Err(SpiceError::UnknownProbe(format!("no element #{}", id.0))),
        }
    }
}

/// The sampled solution of a transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TranResult {
    times: Vec<f64>,
    /// `data[k]` is the full unknown vector at `times[k]`.
    data: Vec<Vec<f64>>,
    num_node_unknowns: usize,
    branch_base: usize,
}

impl TranResult {
    pub(crate) fn new(num_node_unknowns: usize, branch_base: usize) -> TranResult {
        TranResult {
            times: Vec::new(),
            data: Vec::new(),
            num_node_unknowns,
            branch_base,
        }
    }

    pub(crate) fn push(&mut self, t: f64, x: &[f64]) {
        debug_assert!(self.times.last().is_none_or(|&last| t > last));
        self.times.push(t);
        self.data.push(x.to_vec());
    }

    /// Number of accepted time points.
    pub fn num_points(&self) -> usize {
        self.times.len()
    }

    /// The accepted time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Extracts the voltage trace of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty or the node is out of range.
    pub fn voltage(&self, n: NodeId) -> Trace {
        let values = if n.is_ground() {
            vec![0.0; self.times.len()]
        } else {
            self.data.iter().map(|x| x[n.index() - 1]).collect()
        };
        Trace::new(self.times.clone(), values)
    }

    /// Extracts the current trace of a voltage source (positive from `+`
    /// through the source to `−`).
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn source_current(&self, s: SourceRef) -> Trace {
        let idx = self.branch_base + s.branch;
        let values = self.data.iter().map(|x| x[idx]).collect();
        Trace::new(self.times.clone(), values)
    }

    /// Extracts a raw unknown by global index (device internal states).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] if the index is out of range.
    pub fn raw_unknown(&self, idx: usize) -> Result<Trace> {
        if self.data.first().is_none_or(|x| idx >= x.len()) {
            return Err(SpiceError::UnknownProbe(format!(
                "raw unknown {idx} out of range"
            )));
        }
        let values = self.data.iter().map(|x| x[idx]).collect();
        Ok(Trace::new(self.times.clone(), values))
    }

    /// The final unknown vector.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn final_state(&self) -> &[f64] {
        self.data.last().expect("empty transient result")
    }

    /// Current trace through a linear element, flowing from its first to
    /// its second terminal. Resistors use Ohm's law; inductors their
    /// branch unknown; capacitors a centred finite difference of
    /// `C·dv/dt` on the accepted time grid.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for sources and controlled
    /// sources (probe those via [`TranResult::source_current`]).
    ///
    /// # Panics
    ///
    /// Panics if the result has fewer than two points (capacitor case).
    pub fn element_current(&self, ckt: &Circuit, id: ElementId) -> Result<Trace> {
        match ckt.elements().get(id.0) {
            Some(Element::Resistor { a, b, ohms }) => {
                let va = self.voltage(*a);
                let vb = self.voltage(*b);
                let values = va
                    .values()
                    .iter()
                    .zip(vb.values())
                    .map(|(x, y)| (x - y) / ohms)
                    .collect();
                Ok(Trace::new(self.times.clone(), values))
            }
            Some(Element::Inductor { branch, .. }) => {
                let idx = self.branch_base + branch;
                let values = self.data.iter().map(|x| x[idx]).collect();
                Ok(Trace::new(self.times.clone(), values))
            }
            Some(Element::Capacitor { a, b, farads }) => {
                let va = self.voltage(*a);
                let vb = self.voltage(*b);
                let n = self.times.len();
                assert!(n >= 2, "capacitor current needs at least two points");
                let v: Vec<f64> = va
                    .values()
                    .iter()
                    .zip(vb.values())
                    .map(|(x, y)| x - y)
                    .collect();
                let mut i = vec![0.0; n];
                for (k, ik) in i.iter_mut().enumerate() {
                    let (k0, k1) = if k == 0 {
                        (0, 1)
                    } else if k == n - 1 {
                        (n - 2, n - 1)
                    } else {
                        (k - 1, k + 1)
                    };
                    *ik = farads * (v[k1] - v[k0]) / (self.times[k1] - self.times[k0]);
                }
                Ok(Trace::new(self.times.clone(), i))
            }
            Some(other) => Err(SpiceError::UnknownProbe(format!(
                "element current probe not supported for {other:?}"
            ))),
            None => Err(SpiceError::UnknownProbe(format!("no element #{}", id.0))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trace {
        Trace::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 1.0, 0.0])
    }

    #[test]
    fn eval_clamps_and_interpolates() {
        let tr = ramp();
        assert_eq!(tr.eval(-1.0), 0.0);
        assert_eq!(tr.eval(0.5), 0.5);
        assert_eq!(tr.eval(1.5), 1.0);
        assert_eq!(tr.eval(9.0), 0.0);
    }

    #[test]
    fn rising_and_falling_crossings() {
        let tr = ramp();
        assert_eq!(tr.crossing_rising(0.5, 0.0), Some(0.5));
        assert_eq!(tr.crossing_falling(0.5, 0.0), Some(2.5));
        assert_eq!(tr.crossing_rising(0.5, 1.0), None);
        assert_eq!(tr.crossing_rising(2.0, 0.0), None);
    }

    #[test]
    fn integral_full_and_partial() {
        let tr = ramp();
        assert!((tr.integral() - 2.0).abs() < 1e-14);
        assert!((tr.integral_between(0.0, 1.0) - 0.5).abs() < 1e-14);
        assert!((tr.integral_between(1.0, 2.0) - 1.0).abs() < 1e-14);
        // 0.5→1: 0.375, 1→2: 1.0, 2→2.5: 0.375 (falling edge).
        assert!((tr.integral_between(0.5, 2.5) - 1.75).abs() < 1e-12);
        assert_eq!(tr.integral_between(2.0, 2.0), 0.0);
    }

    #[test]
    fn extrema_between() {
        let tr = ramp();
        assert_eq!(tr.min_between(0.5, 2.5), 0.5);
        assert_eq!(tr.max_between(0.0, 3.0), 1.0);
        assert_eq!(tr.min_value(), 0.0);
        assert_eq!(tr.max_value(), 1.0);
    }

    #[test]
    fn multiply_uses_interpolation() {
        let a = ramp();
        let b = Trace::new(vec![0.0, 3.0], vec![2.0, 2.0]);
        let p = a.multiply(&b);
        assert_eq!(p.eval(1.0), 2.0);
        assert!((p.integral() - 4.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_times_panic() {
        let _ = Trace::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn op_result_probes() {
        // Layout: 2 node unknowns, branch base 2.
        let op = OpResult::new(vec![1.0, 2.0, -0.5], 2, 2);
        assert_eq!(op.voltage(NodeId(1)), 1.0);
        assert_eq!(op.voltage(NodeId::GROUND), 0.0);
        let s = SourceRef {
            element: 0,
            branch: 0,
        };
        assert_eq!(op.source_current(s), -0.5);
    }

    #[test]
    fn tran_result_probes() {
        let mut tr = TranResult::new(1, 1);
        tr.push(0.0, &[0.0, 0.1]);
        tr.push(1.0, &[1.0, 0.2]);
        assert_eq!(tr.num_points(), 2);
        assert_eq!(tr.voltage(NodeId(1)).last_value(), 1.0);
        let s = SourceRef {
            element: 0,
            branch: 0,
        };
        assert_eq!(tr.source_current(s).last_value(), 0.2);
        assert!(tr.raw_unknown(5).is_err());
        assert_eq!(tr.final_state(), &[1.0, 0.2]);
    }
}

#[cfg(test)]
mod element_current_tests {
    use super::*;
    use crate::analysis::op::op;
    use crate::analysis::tran::{transient, TranOptions};
    use crate::waveform::Waveform;

    #[test]
    fn dc_element_currents() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
        let r = ckt.resistor(a, b, 1e3);
        let l = ckt.inductor(b, Circuit::GROUND, 1e-6);
        let c = ckt.capacitor(b, Circuit::GROUND, 1e-12);
        let res = op(&mut ckt).unwrap();
        // Inductor shorts b to ground: 2 mA through everything.
        assert!((res.element_current(&ckt, r).unwrap() - 2e-3).abs() < 1e-8);
        assert!((res.element_current(&ckt, l).unwrap() - 2e-3).abs() < 1e-8);
        assert_eq!(res.element_current(&ckt, c).unwrap(), 0.0);
    }

    #[test]
    fn capacitor_transient_current_matches_rc_theory() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        let r = ckt.resistor(a, b, 1e3);
        let c = ckt.capacitor(b, Circuit::GROUND, 1e-9);
        let res = transient(&mut ckt, 5e-6, &TranOptions::default()).unwrap();
        let ir = res.element_current(&ckt, r).unwrap();
        let ic = res.element_current(&ckt, c).unwrap();
        // All resistor current charges the capacitor: traces agree.
        for &t in &[0.5e-6, 1e-6, 2e-6] {
            assert!(
                (ir.eval(t) - ic.eval(t)).abs() < 0.05 * ir.eval(t).abs().max(1e-6),
                "t = {t}: iR {} vs iC {}",
                ir.eval(t),
                ic.eval(t)
            );
        }
        // Initial capacitor current ≈ V/R = 1 mA, decaying with tau = 1 µs.
        assert!((ic.eval(1e-6) - 1e-3 * (-1.0f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn source_probe_is_rejected_with_pointer() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let s = ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = op(&mut ckt).unwrap();
        assert!(res.element_current(&ckt, s.element_id()).is_err());
        assert!(res.element_current(&ckt, ElementId(99)).is_err());
    }
}
