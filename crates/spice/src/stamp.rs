//! The per-iteration MNA assembler.
//!
//! A [`Stamper`] accumulates Jacobian entries and residual contributions
//! for one Newton iteration, then factors and solves for the update.
//! The sign convention is:
//!
//! * the residual `F[n]` of a node row is the sum of currents *leaving*
//!   node `n`;
//! * branch rows hold their constitutive equation residual;
//! * the Newton update solves `J Δx = −F`.
//!
//! Small systems are assembled densely; larger ones into a triplet matrix
//! solved by the sparse Gilbert–Peierls LU.

use nemscmos_numeric::dense::{DenseLu, DenseMatrix};
use nemscmos_numeric::sparse::{SparseLu, Triplet};

use crate::element::NodeId;
use crate::profile::{self, MatrixBackend};
use crate::Result;

/// Below this number of unknowns the dense path is used.
const DENSE_LIMIT: usize = 64;

#[derive(Debug, Clone)]
enum Backend {
    Dense(DenseMatrix),
    Sparse(Triplet),
}

/// Which part of the assembly is currently stamping, for non-finite
/// attribution (see [`Stamper::set_section`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampSection {
    /// The linear elements of the circuit.
    Linear,
    /// The nonlinear device with this index in the circuit's device list.
    Device(usize),
    /// Solver-internal stamps (gmin shunts, IC clamps).
    Solver,
    /// The fault-injection framework ([`crate::faults`]).
    Fault,
}

/// Record of the first non-finite value stamped in an assembly pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteNote {
    /// The section active when the value was stamped.
    pub section: StampSection,
    /// The row (raw unknown index) it landed on.
    pub row: usize,
    /// `"jacobian"` or `"residual"`.
    pub stage: &'static str,
}

/// Accumulates one Newton iteration's MNA matrix and residual.
#[derive(Debug, Clone)]
pub struct Stamper {
    n: usize,
    backend: Backend,
    rhs: Vec<f64>,
    section: StampSection,
    first_non_finite: Option<NonFiniteNote>,
}

impl Stamper {
    /// Creates an assembler for `n` unknowns.
    ///
    /// The backend is dense below [`DENSE_LIMIT`] unknowns and sparse
    /// above, unless the active [`SolveProfile`] pins one explicitly
    /// (used by differential testing to prove both paths agree).
    ///
    /// [`SolveProfile`]: crate::profile::SolveProfile
    pub fn new(n: usize) -> Stamper {
        let dense = match profile::current().matrix_backend {
            Some(MatrixBackend::Dense) => true,
            Some(MatrixBackend::Sparse) => false,
            None => n <= DENSE_LIMIT,
        };
        let backend = if dense {
            Backend::Dense(DenseMatrix::zeros(n, n))
        } else {
            Backend::Sparse(Triplet::with_capacity(n, n, n * 8))
        };
        Stamper {
            n,
            backend,
            rhs: vec![0.0; n],
            section: StampSection::Linear,
            first_non_finite: None,
        }
    }

    /// Number of unknowns.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// True when the dense backend was selected.
    pub fn is_dense(&self) -> bool {
        matches!(self.backend, Backend::Dense(_))
    }

    /// Clears the matrix, residual, and non-finite bookkeeping for the
    /// next iteration, keeping allocations.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Dense(m) => m.clear(),
            Backend::Sparse(t) => t.clear(),
        }
        self.rhs.iter_mut().for_each(|x| *x = 0.0);
        self.first_non_finite = None;
    }

    /// Declares which part of the assembly the following stamps belong
    /// to, so a non-finite value can be attributed to its producer.
    pub fn set_section(&mut self, section: StampSection) {
        self.section = section;
    }

    /// The first non-finite value stamped since the last [`clear`],
    /// if any.
    ///
    /// [`clear`]: Stamper::clear
    pub fn non_finite(&self) -> Option<&NonFiniteNote> {
        self.first_non_finite.as_ref()
    }

    #[cold]
    fn note_non_finite(&mut self, row: usize, stage: &'static str) {
        if self.first_non_finite.is_none() {
            self.first_non_finite = Some(NonFiniteNote {
                section: self.section,
                row,
                stage,
            });
        }
    }

    /// Row index of a node, or `None` for ground.
    #[inline]
    pub fn node_row(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    /// Adds `v` to Jacobian entry `(r, c)` (raw unknown indices).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn j(&mut self, r: usize, c: usize, v: f64) {
        if !v.is_finite() {
            self.note_non_finite(r, "jacobian");
        }
        match &mut self.backend {
            Backend::Dense(m) => m.add(r, c, v),
            Backend::Sparse(t) => t.push(r, c, v),
        }
    }

    /// Adds `v` to the residual entry `r` (raw unknown index).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn f(&mut self, r: usize, v: f64) {
        if !v.is_finite() {
            self.note_non_finite(r, "residual");
        }
        self.rhs[r] += v;
    }

    /// Adds `v` to the Jacobian between two nodes, skipping ground rows
    /// and columns.
    #[inline]
    pub fn j_node(&mut self, rn: NodeId, cn: NodeId, v: f64) {
        if let (Some(r), Some(c)) = (self.node_row(rn), self.node_row(cn)) {
            self.j(r, c, v);
        }
    }

    /// Adds `v` to a node's residual row (skipping ground).
    #[inline]
    pub fn f_node(&mut self, n: NodeId, v: f64) {
        if let Some(r) = self.node_row(n) {
            self.f(r, v);
        }
    }

    /// Stamps a current `i` flowing from `from` to `to` into the residual
    /// only (for current contributions whose partials are stamped
    /// separately).
    #[inline]
    pub fn current(&mut self, from: NodeId, to: NodeId, i: f64) {
        self.f_node(from, i);
        self.f_node(to, -i);
    }

    /// Stamps a two-terminal conductance `g` carrying current
    /// `i = g (v(a) − v(b))` from `a` to `b`: both the Jacobian pattern and
    /// the residual at the candidate voltages `va`, `vb`.
    pub fn conductance(&mut self, a: NodeId, b: NodeId, g: f64, va: f64, vb: f64) {
        let i = g * (va - vb);
        self.current(a, b, i);
        self.j_node(a, a, g);
        self.j_node(b, b, g);
        self.j_node(a, b, -g);
        self.j_node(b, a, -g);
    }

    /// Stamps a nonlinear branch current `i` flowing from `a` to `b`, whose
    /// partial derivatives with respect to node voltages are given in
    /// `partials` as `(node, dI/dV_node)` pairs.
    ///
    /// This is the workhorse for transistor-like devices: the drain-source
    /// current with its `g_m`, `g_ds` and source partials is one call.
    pub fn nonlinear_current(&mut self, a: NodeId, b: NodeId, i: f64, partials: &[(NodeId, f64)]) {
        self.current(a, b, i);
        for &(node, di) in partials {
            self.j_node(a, node, di);
            self.j_node(b, node, -di);
        }
    }

    /// Stamps the convergence shunt `gmin` from every non-ground node to
    /// ground, consistent with the candidate solution `x`.
    pub fn gmin_shunts(&mut self, gmin: f64, num_node_unknowns: usize, x: &[f64]) {
        if gmin <= 0.0 {
            return;
        }
        for (r, &xr) in x.iter().enumerate().take(num_node_unknowns) {
            self.j(r, r, gmin);
            self.f(r, gmin * xr);
        }
    }

    /// Factors the assembled Jacobian and solves `J Δx = −F`, returning the
    /// Newton update `Δx`.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures from the linear solver.
    pub fn solve(&self) -> Result<Vec<f64>> {
        crate::stats::count_lu_factorization();
        let neg_f: Vec<f64> = self.rhs.iter().map(|&v| -v).collect();
        let dx = match &self.backend {
            Backend::Dense(m) => {
                let lu = DenseLu::factor(m.clone())?;
                lu.solve(&neg_f)?
            }
            Backend::Sparse(t) => {
                let lu = SparseLu::factor(&t.to_csc())?;
                lu.solve(&neg_f)?
            }
        };
        Ok(dx)
    }

    /// Infinity norm of the current residual.
    pub fn residual_norm(&self) -> f64 {
        nemscmos_numeric::inf_norm(&self.rhs)
    }

    /// The assembled residual vector (one entry per unknown), used by the
    /// post-solve KCL audit.
    pub fn residual(&self) -> &[f64] {
        &self.rhs
    }

    /// Zeroes Jacobian row `r`, making the assembled system structurally
    /// singular. Used only by the fault-injection framework
    /// ([`crate::faults::FaultKind::SingularPivot`]).
    pub fn make_singular(&mut self, r: usize) {
        match &mut self.backend {
            Backend::Dense(m) => {
                for c in 0..self.n {
                    m.set(r, c, 0.0);
                }
            }
            Backend::Sparse(t) => t.zero_row(r),
        }
    }

    /// Multiplies every accumulated Jacobian entry by the next value of
    /// `factor`. Used only by the fault-injection framework
    /// ([`crate::faults::FaultKind::JacobianPerturb`]); the residual is
    /// left exact, so a solve that still converges converges to the true
    /// solution.
    pub fn scale_jacobian(&mut self, mut factor: impl FnMut() -> f64) {
        match &mut self.backend {
            Backend::Dense(m) => {
                for r in 0..self.n {
                    for c in 0..self.n {
                        let v = m.get(r, c);
                        if v != 0.0 {
                            m.set(r, c, v * factor());
                        }
                    }
                }
            }
            Backend::Sparse(t) => t.map_values(|v| v * factor()),
        }
    }

    /// Returns every accumulated Jacobian entry as `(row, col, value)`
    /// triplets (duplicates unsummed for the sparse backend; the dense
    /// backend reports its nonzero positions). Used by the AC analysis to
    /// extract the small-signal conductance matrix at an operating point.
    pub fn jacobian_entries(&self) -> Vec<(usize, usize, f64)> {
        match &self.backend {
            Backend::Dense(m) => {
                let mut out = Vec::new();
                for r in 0..self.n {
                    for c in 0..self.n {
                        let v = m.get(r, c);
                        if v != 0.0 {
                            out.push((r, c, v));
                        }
                    }
                }
                out
            }
            Backend::Sparse(t) => t.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductance_stamp_solves_divider() {
        // 1 V source modelled as fixed residual on node 1 is awkward here;
        // instead solve G v = I directly: two resistors to ground from one
        // node driven by a 1 A injection.
        let mut st = Stamper::new(1);
        let n1 = NodeId(1);
        let v = [0.0];
        st.conductance(n1, NodeId::GROUND, 1.0, v[0], 0.0);
        st.conductance(n1, NodeId::GROUND, 1.0, v[0], 0.0);
        // Inject 1 A into node 1 (current flows ground -> node).
        st.current(NodeId::GROUND, n1, 1.0);
        let dx = st.solve().unwrap();
        assert!((dx[0] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn residual_reflects_candidate_voltages() {
        let mut st = Stamper::new(1);
        let n1 = NodeId(1);
        // At v = 2 with g = 3 to ground, the leaving current is 6.
        st.conductance(n1, NodeId::GROUND, 3.0, 2.0, 0.0);
        assert!((st.residual_norm() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn ground_contributions_are_dropped() {
        let mut st = Stamper::new(2);
        // A conductance fully between ground and ground must not panic or
        // touch the matrix.
        st.conductance(NodeId::GROUND, NodeId::GROUND, 1.0, 0.0, 0.0);
        assert_eq!(st.residual_norm(), 0.0);
    }

    #[test]
    fn sparse_backend_used_for_large_systems() {
        let n = DENSE_LIMIT + 10;
        let mut st = Stamper::new(n);
        assert!(!st.is_dense());
        for r in 0..n {
            st.j(r, r, 2.0);
            st.f(r, -2.0); // residual −2 → solve gives +1
        }
        let dx = st.solve().unwrap();
        assert!(dx.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn profile_pins_backend_against_size_default() {
        use crate::profile::{self, MatrixBackend, SolveProfile};
        assert!(Stamper::new(2).is_dense());
        let sparse = SolveProfile {
            matrix_backend: Some(MatrixBackend::Sparse),
            ..Default::default()
        };
        profile::with(sparse, || {
            assert!(!Stamper::new(2).is_dense());
        });
        let dense = SolveProfile {
            matrix_backend: Some(MatrixBackend::Dense),
            ..Default::default()
        };
        profile::with(dense, || {
            assert!(Stamper::new(DENSE_LIMIT + 10).is_dense());
        });
        // Restored after the scopes.
        assert!(Stamper::new(2).is_dense());
    }

    #[test]
    fn clear_resets_everything() {
        let mut st = Stamper::new(2);
        st.j(0, 0, 1.0);
        st.f(1, 5.0);
        st.clear();
        assert_eq!(st.residual_norm(), 0.0);
        // After clear the matrix is singular (all zeros): solving must fail.
        assert!(st.solve().is_err());
    }

    #[test]
    fn non_finite_stamps_are_noted_with_attribution() {
        let mut st = Stamper::new(2);
        st.set_section(StampSection::Device(3));
        st.j(1, 0, f64::NAN);
        st.f(0, f64::INFINITY); // later entries don't overwrite the first
        let note = st.non_finite().expect("NaN must be noted");
        assert_eq!(note.section, StampSection::Device(3));
        assert_eq!(note.row, 1);
        assert_eq!(note.stage, "jacobian");
        st.clear();
        assert!(st.non_finite().is_none());
    }

    #[test]
    fn make_singular_defeats_the_solve() {
        for n in [2, DENSE_LIMIT + 2] {
            let mut st = Stamper::new(n);
            for r in 0..n {
                st.j(r, r, 1.0);
                st.f(r, 1.0);
            }
            st.make_singular(n / 2);
            assert!(st.solve().is_err(), "n = {n} should be singular");
        }
    }

    #[test]
    fn scale_jacobian_preserves_residual() {
        for n in [2, DENSE_LIMIT + 2] {
            let mut st = Stamper::new(n);
            for r in 0..n {
                st.j(r, r, 2.0);
                st.f(r, -4.0);
            }
            st.scale_jacobian(|| 0.5); // J = I now, residual untouched
            assert_eq!(st.residual_norm(), 4.0);
            let dx = st.solve().unwrap();
            assert!(dx.iter().all(|&v| (v - 4.0).abs() < 1e-12), "n = {n}");
        }
    }

    #[test]
    fn nonlinear_current_stamps_partials_on_both_rows() {
        let mut st = Stamper::new(3);
        let d = NodeId(1);
        let s = NodeId(2);
        let g = NodeId(3);
        st.nonlinear_current(d, s, 1e-3, &[(g, 2e-3), (d, 1e-4), (s, -2.1e-3)]);
        // Solve is meaningless here; just verify the residual bookkeeping.
        assert!((st.residual_norm() - 1e-3).abs() < 1e-18);
    }
}
