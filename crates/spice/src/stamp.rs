//! The per-iteration MNA assembler.
//!
//! A [`Stamper`] accumulates Jacobian entries and residual contributions
//! for one Newton iteration, then factors and solves for the update.
//! The sign convention is:
//!
//! * the residual `F[n]` of a node row is the sum of currents *leaving*
//!   node `n`;
//! * branch rows hold their constitutive equation residual;
//! * the Newton update solves `J Δx = −F`.
//!
//! Small systems are assembled densely; larger ones into a triplet matrix
//! solved by the sparse Gilbert–Peierls LU.
//!
//! # The incremental fast path
//!
//! Reused across Newton iterations and timesteps (the engine keeps one
//! `Stamper` per run), the assembler learns the MNA structure once and
//! then gets out of its own way — while staying *bitwise identical* to
//! the from-scratch path (pinned by `SolveProfile::legacy_linear_algebra`
//! in differential testing):
//!
//! * **Pattern-frozen stamping** — the first sparse solve records the
//!   triplet → CSC slot of every push; later assemblies write straight
//!   into the preallocated CSC value slots (assign on a slot's first
//!   touch, accumulate after), eliminating the per-iteration
//!   sort/dedup/alloc of compression. A push sequence that deviates from
//!   the frozen one thaws back to triplets and re-freezes on the next
//!   solve.
//! * **Symbolic LU reuse** — sparse factorizations keep their pivot order
//!   and reach ([`SparseLu::factor_symbolic`]); subsequent solves replay
//!   a numeric-only refactorization whose guards (pivot monitor, fill
//!   drift) make success bitwise-equal to a fresh factorization, falling
//!   back to one otherwise. Dense factorizations refactor into the cached
//!   allocation instead of cloning the matrix every iteration.
//! * **Linear-circuit bypass** — when the caller proves the Jacobian
//!   cannot have changed (same [`JacobianKey`], no nonlinear devices, no
//!   fault injection), the previous factorization is reused outright and
//!   only the RHS is re-solved.

use nemscmos_numeric::dense::{DenseLu, DenseMatrix};
use nemscmos_numeric::sparse::{CscMatrix, SparseLu, Triplet};

use crate::element::NodeId;
use crate::profile::{self, MatrixBackend};
use crate::Result;

/// Below this number of unknowns the dense path is used.
///
/// Measured crossover (see DESIGN.md §15): on MNA-sparsity matrices the
/// sparse factor+solve overtakes dense between ~40 and ~70 unknowns
/// depending on pattern, so 64 sits inside the measured band. It must
/// also stay below the 82-unknown `wide-rc-ladder` golden deck (which
/// pins the sparse default) and above every other golden deck, so the
/// committed golden waveforms are byte-stable against this constant.
const DENSE_LIMIT: usize = 64;

/// At or above this many unknowns the sparse backend computes a
/// fill-reducing column ordering ([`min_degree`]) before factoring.
///
/// Deliberately above the largest golden deck (82 unknowns): the six
/// committed golden waveforms must stay byte-identical, and the
/// `fast_vs_slow` differential compares the default path bitwise against
/// `legacy_linear_algebra`, which always factors in natural order. Decks
/// below the threshold therefore keep the natural order verbatim; the
/// `ordered_vs_natural` differential forces the ordering onto them via
/// [`SolveProfile::ordering_limit`] and checks solution equivalence.
///
/// [`min_degree`]: nemscmos_numeric::sparse::min_degree
/// [`SolveProfile::ordering_limit`]: crate::profile::SolveProfile::ordering_limit
pub(crate) const ORDERING_LIMIT: usize = 96;

/// Fingerprint of everything that can change the assembled Jacobian of a
/// circuit *without nonlinear devices*: the analysis mode, the companion-
/// model step, and the solver's own matrix stamps. Two assemblies with
/// equal keys produce identical matrices (sources and IC-clamp targets
/// only move the RHS), so the factorization can be reused outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JacobianKey {
    /// Transient (vs. DC) companion models.
    pub transient: bool,
    /// Bit pattern of the step size (`0` in DC).
    pub dt_bits: u64,
    /// Backward-Euler (vs. trapezoidal) companion conductances.
    pub backward_euler: bool,
    /// Bit pattern of the convergence shunt conductance.
    pub gmin_bits: u64,
    /// Initial-condition clamp stamps present.
    pub ic_clamps: bool,
}

#[derive(Debug, Clone)]
enum Backend {
    Dense(DenseMatrix),
    Sparse(Triplet),
    Frozen(Frozen),
}

/// The pattern-frozen sparse state: the compressed matrix plus the
/// recorded push sequence that fills it.
#[derive(Debug, Clone)]
struct Frozen {
    csc: CscMatrix,
    /// Per push: the `(row, col)` it must target.
    coords: Vec<(u32, u32)>,
    /// Per push: the CSC value slot it lands in.
    slots: Vec<u32>,
    /// Per push: whether it is the first touch of its slot (assign
    /// instead of accumulate, reproducing push-order duplicate summation
    /// without having to zero the values between iterations).
    first: Vec<bool>,
    /// Pushes consumed since the last [`Stamper::clear`].
    cursor: usize,
    /// True once an assembly has actually run through the slot map (the
    /// freezing solve itself compresses the triplets the ordinary way).
    via_slots: bool,
}

/// Which part of the assembly is currently stamping, for non-finite
/// attribution (see [`Stamper::set_section`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampSection {
    /// The linear elements of the circuit.
    Linear,
    /// The nonlinear device with this index in the circuit's device list.
    Device(usize),
    /// Solver-internal stamps (gmin shunts, IC clamps).
    Solver,
    /// The fault-injection framework ([`crate::faults`]).
    Fault,
}

/// Record of the first non-finite value stamped in an assembly pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteNote {
    /// The section active when the value was stamped.
    pub section: StampSection,
    /// The row (raw unknown index) it landed on.
    pub row: usize,
    /// `"jacobian"` or `"residual"`.
    pub stage: &'static str,
}

/// Accumulates one Newton iteration's MNA matrix and residual.
#[derive(Debug, Clone)]
pub struct Stamper {
    n: usize,
    backend: Backend,
    rhs: Vec<f64>,
    section: StampSection,
    first_non_finite: Option<NonFiniteNote>,
    /// Replicate the pre-fast-path behavior exactly (no freezing, no
    /// factorization reuse, fresh allocations per solve).
    legacy: bool,
    /// Freeze the sparse pattern at the next sparse solve. Disarmed for
    /// one solve after a thaw so the frozen pattern is always rebuilt
    /// from a raw push sequence, never from a thawed hybrid.
    freeze_armed: bool,
    /// Whether sparse factorizations use a fill-reducing column ordering
    /// (decided at construction from size and profile, like `legacy`).
    ordered: bool,
    /// The fill-reducing column order of the frozen pattern, computed
    /// once per pattern and reused across refactor fallbacks. Invalidated
    /// by [`thaw`](Stamper::thaw) (the pattern is about to change).
    col_order: Option<Vec<usize>>,
    /// Cached sparse factorization (symbolic record attached) for
    /// numeric-only refactorization and bypass.
    sparse_lu: Option<SparseLu>,
    /// Cached dense factorization, refactored in place each solve.
    dense_lu: Option<DenseLu>,
    /// The key under which the cached factorization was built.
    factor_key: Option<JacobianKey>,
    /// Scratch for the negated residual.
    neg_f: Vec<f64>,
}

impl Stamper {
    /// Creates an assembler for `n` unknowns.
    ///
    /// The backend is dense below [`DENSE_LIMIT`] unknowns and sparse
    /// above, unless the active [`SolveProfile`] pins one explicitly
    /// (used by differential testing to prove both paths agree).
    ///
    /// [`SolveProfile`]: crate::profile::SolveProfile
    pub fn new(n: usize) -> Stamper {
        let backend = if Self::want_dense(n) {
            Backend::Dense(DenseMatrix::zeros(n, n))
        } else {
            Backend::Sparse(Triplet::with_capacity(n, n, n * 8))
        };
        Stamper {
            n,
            backend,
            rhs: vec![0.0; n],
            section: StampSection::Linear,
            first_non_finite: None,
            legacy: profile::current().legacy_linear_algebra,
            freeze_armed: true,
            ordered: Self::want_ordered(n),
            col_order: None,
            sparse_lu: None,
            dense_lu: None,
            factor_key: None,
            neg_f: Vec::new(),
        }
    }

    /// The size-or-profile backend decision for `n` unknowns (used by the
    /// engine to tell whether a cached `Stamper` is still appropriate).
    pub(crate) fn want_dense(n: usize) -> bool {
        match profile::current().matrix_backend {
            Some(MatrixBackend::Dense) => true,
            Some(MatrixBackend::Sparse) => false,
            None => n <= DENSE_LIMIT,
        }
    }

    /// The size-or-profile ordering decision for `n` unknowns: whether
    /// sparse factorizations should use a fill-reducing column order.
    /// Natural order is pinned by `SolveProfile::natural_ordering` (and
    /// implied by `legacy_linear_algebra`, which predates the ordering);
    /// the engagement threshold defaults to [`ORDERING_LIMIT`] and can be
    /// overridden through `SolveProfile::ordering_limit`.
    pub(crate) fn want_ordered(n: usize) -> bool {
        let p = profile::current();
        if p.legacy_linear_algebra || p.natural_ordering {
            return false;
        }
        n >= p.ordering_limit.unwrap_or(ORDERING_LIMIT)
    }

    /// True when this assembler replays the pre-fast-path behavior.
    pub(crate) fn is_legacy(&self) -> bool {
        self.legacy
    }

    /// True when sparse factorizations use a fill-reducing column order
    /// (used by the engine to tell whether a cached `Stamper` is still
    /// appropriate under the active profile).
    pub(crate) fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// Number of unknowns.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// True when the dense backend was selected.
    pub fn is_dense(&self) -> bool {
        matches!(self.backend, Backend::Dense(_))
    }

    /// Clears the matrix, residual, and non-finite bookkeeping for the
    /// next iteration, keeping allocations.
    ///
    /// A frozen sparse pattern is *not* discarded: only its push cursor
    /// rewinds, and each slot is assigned (not accumulated) on its first
    /// touch of the next assembly, so no value zeroing is needed.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Dense(m) => m.clear(),
            Backend::Sparse(t) => t.clear(),
            Backend::Frozen(fz) => {
                fz.cursor = 0;
                fz.via_slots = true;
            }
        }
        self.rhs.iter_mut().for_each(|x| *x = 0.0);
        self.first_non_finite = None;
    }

    /// Declares which part of the assembly the following stamps belong
    /// to, so a non-finite value can be attributed to its producer.
    pub fn set_section(&mut self, section: StampSection) {
        self.section = section;
    }

    /// The first non-finite value stamped since the last [`clear`],
    /// if any.
    ///
    /// [`clear`]: Stamper::clear
    pub fn non_finite(&self) -> Option<&NonFiniteNote> {
        self.first_non_finite.as_ref()
    }

    #[cold]
    fn note_non_finite(&mut self, row: usize, stage: &'static str) {
        if self.first_non_finite.is_none() {
            self.first_non_finite = Some(NonFiniteNote {
                section: self.section,
                row,
                stage,
            });
        }
    }

    /// Row index of a node, or `None` for ground.
    #[inline]
    pub fn node_row(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    /// Adds `v` to Jacobian entry `(r, c)` (raw unknown indices).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn j(&mut self, r: usize, c: usize, v: f64) {
        if !v.is_finite() {
            self.note_non_finite(r, "jacobian");
        }
        if let Backend::Frozen(fz) = &mut self.backend {
            let k = fz.cursor;
            if k < fz.coords.len() && fz.coords[k] == (r as u32, c as u32) {
                let s = fz.slots[k] as usize;
                if fz.first[k] {
                    fz.csc.values_mut()[s] = v;
                } else {
                    fz.csc.values_mut()[s] += v;
                }
                fz.cursor = k + 1;
                return;
            }
            // The push sequence deviated from the frozen pattern: fall
            // back to triplet assembly for this solve.
            self.thaw();
        }
        match &mut self.backend {
            Backend::Dense(m) => m.add(r, c, v),
            Backend::Sparse(t) => t.push(r, c, v),
            Backend::Frozen(_) => unreachable!("thawed above"),
        }
    }

    /// Converts a frozen backend back into triplets, carrying over the
    /// accumulated contributions of the pushes consumed so far (one entry
    /// per touched slot, placed at the slot's first-touch position, so
    /// duplicate summation order is preserved bit for bit).
    #[cold]
    fn thaw(&mut self) {
        let placeholder = Backend::Sparse(Triplet::new(self.n, self.n));
        let fz = match std::mem::replace(&mut self.backend, placeholder) {
            Backend::Frozen(fz) => fz,
            other => {
                self.backend = other;
                return;
            }
        };
        let mut t = Triplet::with_capacity(self.n, self.n, fz.coords.len().max(self.n * 8));
        for k in 0..fz.cursor {
            if fz.first[k] {
                let (r, c) = fz.coords[k];
                t.push(
                    r as usize,
                    c as usize,
                    fz.csc.values()[fz.slots[k] as usize],
                );
            }
        }
        self.backend = Backend::Sparse(t);
        self.freeze_armed = false;
        self.sparse_lu = None;
        self.factor_key = None;
        // The pattern is about to change; an ordering computed for the
        // old pattern would silently misdirect the next factorization.
        self.col_order = None;
    }

    /// Compresses the current triplet assembly and freezes its pattern:
    /// records the per-push slot map so later assemblies write straight
    /// into the CSC values.
    fn freeze(&mut self) {
        let t = match &self.backend {
            Backend::Sparse(t) => t,
            _ => return,
        };
        debug_assert!(self.n < u32::MAX as usize);
        let (csc, map) = t.to_csc_mapped();
        let coords: Vec<(u32, u32)> = t
            .entries()
            .iter()
            .map(|&(r, c, _)| (r as u32, c as u32))
            .collect();
        let slots: Vec<u32> = map.iter().map(|&s| s as u32).collect();
        let mut seen = vec![false; csc.nnz()];
        let first: Vec<bool> = map
            .iter()
            .map(|&s| !std::mem::replace(&mut seen[s], true))
            .collect();
        let cursor = coords.len();
        self.backend = Backend::Frozen(Frozen {
            csc,
            coords,
            slots,
            first,
            cursor,
            via_slots: false,
        });
    }

    /// Adds `v` to the residual entry `r` (raw unknown index).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    pub fn f(&mut self, r: usize, v: f64) {
        if !v.is_finite() {
            self.note_non_finite(r, "residual");
        }
        self.rhs[r] += v;
    }

    /// Adds `v` to the Jacobian between two nodes, skipping ground rows
    /// and columns.
    #[inline]
    pub fn j_node(&mut self, rn: NodeId, cn: NodeId, v: f64) {
        if let (Some(r), Some(c)) = (self.node_row(rn), self.node_row(cn)) {
            self.j(r, c, v);
        }
    }

    /// Adds `v` to a node's residual row (skipping ground).
    #[inline]
    pub fn f_node(&mut self, n: NodeId, v: f64) {
        if let Some(r) = self.node_row(n) {
            self.f(r, v);
        }
    }

    /// Stamps a current `i` flowing from `from` to `to` into the residual
    /// only (for current contributions whose partials are stamped
    /// separately).
    #[inline]
    pub fn current(&mut self, from: NodeId, to: NodeId, i: f64) {
        self.f_node(from, i);
        self.f_node(to, -i);
    }

    /// Stamps a two-terminal conductance `g` carrying current
    /// `i = g (v(a) − v(b))` from `a` to `b`: both the Jacobian pattern and
    /// the residual at the candidate voltages `va`, `vb`.
    pub fn conductance(&mut self, a: NodeId, b: NodeId, g: f64, va: f64, vb: f64) {
        let i = g * (va - vb);
        self.current(a, b, i);
        self.j_node(a, a, g);
        self.j_node(b, b, g);
        self.j_node(a, b, -g);
        self.j_node(b, a, -g);
    }

    /// Stamps a nonlinear branch current `i` flowing from `a` to `b`, whose
    /// partial derivatives with respect to node voltages are given in
    /// `partials` as `(node, dI/dV_node)` pairs.
    ///
    /// This is the workhorse for transistor-like devices: the drain-source
    /// current with its `g_m`, `g_ds` and source partials is one call.
    pub fn nonlinear_current(&mut self, a: NodeId, b: NodeId, i: f64, partials: &[(NodeId, f64)]) {
        self.current(a, b, i);
        for &(node, di) in partials {
            self.j_node(a, node, di);
            self.j_node(b, node, -di);
        }
    }

    /// Stamps the convergence shunt `gmin` from every non-ground node to
    /// ground, consistent with the candidate solution `x`.
    pub fn gmin_shunts(&mut self, gmin: f64, num_node_unknowns: usize, x: &[f64]) {
        if gmin <= 0.0 {
            return;
        }
        for (r, &xr) in x.iter().enumerate().take(num_node_unknowns) {
            self.j(r, r, gmin);
            self.f(r, gmin * xr);
        }
    }

    /// Factors the assembled Jacobian and solves `J Δx = −F`, returning the
    /// Newton update `Δx`.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures from the linear solver.
    pub fn solve(&mut self) -> Result<Vec<f64>> {
        self.solve_with_key(None)
    }

    /// Like [`solve`](Stamper::solve), with the caller's proof of Jacobian
    /// identity: when `key` is `Some` and equals the key of the cached
    /// factorization, the factorization is skipped outright and only the
    /// RHS is re-solved (the linear-circuit bypass). Callers must pass
    /// `Some` only when the assembled matrix is fully determined by the
    /// key — no nonlinear devices, no fault injection.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix failures from the linear solver.
    pub fn solve_with_key(&mut self, key: Option<JacobianKey>) -> Result<Vec<f64>> {
        // An assembly that consumed only part of the frozen sequence has
        // a shrunken pattern: untouched slots hold stale values, so the
        // frozen matrix is unusable — thaw back to the touched entries.
        if matches!(&self.backend, Backend::Frozen(fz) if fz.cursor != fz.coords.len()) {
            self.thaw();
        }
        // A raw (non-legacy) triplet assembly freezes at this solve.
        if !self.legacy && self.freeze_armed && matches!(self.backend, Backend::Sparse(_)) {
            self.freeze();
        }
        self.neg_f.clear();
        self.neg_f.extend(self.rhs.iter().map(|&v| -v));
        match &mut self.backend {
            Backend::Dense(m) => {
                if self.legacy {
                    crate::stats::count_lu_factorization();
                    let lu = DenseLu::factor(m.clone())?;
                    return Ok(lu.solve(&self.neg_f)?);
                }
                if let Some(lu) = self
                    .dense_lu
                    .as_ref()
                    .filter(|_| key.is_some() && key == self.factor_key)
                {
                    crate::stats::count_bypass_solve();
                    return Ok(lu.solve(&self.neg_f)?);
                }
                crate::stats::count_lu_factorization();
                self.factor_key = None;
                match self.dense_lu.as_mut() {
                    Some(lu) => {
                        if let Err(e) = lu.refactor(m) {
                            // The cached factors are partially overwritten.
                            self.dense_lu = None;
                            return Err(e.into());
                        }
                    }
                    None => self.dense_lu = Some(DenseLu::factor(m.clone())?),
                }
                self.factor_key = key;
                Ok(self.dense_lu.as_ref().unwrap().solve(&self.neg_f)?)
            }
            Backend::Sparse(t) => {
                // Legacy, or the one hybrid solve right after a thaw:
                // compress and factor from scratch, then re-arm freezing.
                crate::stats::count_lu_factorization();
                if !self.legacy {
                    self.freeze_armed = true;
                }
                let lu = SparseLu::factor(&t.to_csc())?;
                Ok(lu.solve(&self.neg_f)?)
            }
            Backend::Frozen(fz) => {
                if fz.via_slots {
                    crate::stats::count_slot_cache_hit();
                }
                if let Some(lu) = self
                    .sparse_lu
                    .as_ref()
                    .filter(|_| key.is_some() && key == self.factor_key)
                {
                    crate::stats::count_bypass_solve();
                    return Ok(lu.solve(&self.neg_f)?);
                }
                crate::stats::count_lu_factorization();
                self.factor_key = None;
                let mut reused = false;
                if let Some(lu) = self.sparse_lu.as_mut() {
                    match lu.refactor(&fz.csc) {
                        Ok(()) => {
                            crate::stats::count_symbolic_reuse();
                            reused = true;
                        }
                        Err(_reject) => {
                            // Guard fired (pivot drift, fill drift, small
                            // pivot): discard the partially overwritten
                            // factors and factor afresh below.
                            crate::stats::count_refactor_fallback();
                            self.sparse_lu = None;
                        }
                    }
                }
                if !reused {
                    let lu = if self.ordered {
                        if self.col_order.is_none() {
                            // Computed once per frozen pattern and kept
                            // across refactor fallbacks (value drift does
                            // not change the pattern the order was built
                            // for).
                            let t0 = std::time::Instant::now();
                            let q = nemscmos_numeric::sparse::min_degree(&fz.csc);
                            crate::stats::count_ordering_ns(t0.elapsed().as_nanos() as u64);
                            self.col_order = Some(q);
                        }
                        let q = self.col_order.as_ref().unwrap();
                        SparseLu::factor_symbolic_with_order(&fz.csc, q)?
                    } else {
                        SparseLu::factor_symbolic(&fz.csc)?
                    };
                    crate::stats::count_fill_nnz(lu.factor_nnz() as u64);
                    self.sparse_lu = Some(lu);
                }
                self.factor_key = key;
                Ok(self.sparse_lu.as_ref().unwrap().solve(&self.neg_f)?)
            }
        }
    }

    /// Infinity norm of the current residual.
    pub fn residual_norm(&self) -> f64 {
        nemscmos_numeric::inf_norm(&self.rhs)
    }

    /// The assembled residual vector (one entry per unknown), used by the
    /// post-solve KCL audit.
    pub fn residual(&self) -> &[f64] {
        &self.rhs
    }

    /// Zeroes Jacobian row `r`, making the assembled system structurally
    /// singular. Used only by the fault-injection framework
    /// ([`crate::faults::FaultKind::SingularPivot`]).
    pub fn make_singular(&mut self, r: usize) {
        match &mut self.backend {
            Backend::Dense(m) => {
                for c in 0..self.n {
                    m.set(r, c, 0.0);
                }
            }
            Backend::Sparse(t) => t.zero_row(r),
            Backend::Frozen(fz) => fz.csc.zero_row_values(r),
        }
        // A factorization cached before the fault cannot be reused.
        self.factor_key = None;
    }

    /// Multiplies every accumulated Jacobian entry by the next value of
    /// `factor`. Used only by the fault-injection framework
    /// ([`crate::faults::FaultKind::JacobianPerturb`]); the residual is
    /// left exact, so a solve that still converges converges to the true
    /// solution.
    pub fn scale_jacobian(&mut self, mut factor: impl FnMut() -> f64) {
        match &mut self.backend {
            Backend::Dense(m) => {
                for r in 0..self.n {
                    for c in 0..self.n {
                        let v = m.get(r, c);
                        if v != 0.0 {
                            m.set(r, c, v * factor());
                        }
                    }
                }
            }
            Backend::Sparse(t) => t.map_values(|v| v * factor()),
            Backend::Frozen(fz) => {
                // The slot-mapped values are the already-summed CSC
                // entries, in column-major pattern order — exactly what a
                // compression of this assembly would have produced, so
                // perturbing them perturbs the true assembled matrix.
                for v in fz.csc.values_mut() {
                    *v *= factor();
                }
            }
        }
        self.factor_key = None;
    }

    /// Returns every accumulated Jacobian entry as `(row, col, value)`
    /// triplets (duplicates unsummed for the sparse backend; the dense
    /// backend reports its nonzero positions). Used by the AC analysis to
    /// extract the small-signal conductance matrix at an operating point.
    pub fn jacobian_entries(&self) -> Vec<(usize, usize, f64)> {
        match &self.backend {
            Backend::Dense(m) => {
                let mut out = Vec::new();
                for r in 0..self.n {
                    for c in 0..self.n {
                        let v = m.get(r, c);
                        if v != 0.0 {
                            out.push((r, c, v));
                        }
                    }
                }
                out
            }
            Backend::Sparse(t) => t.iter().collect(),
            Backend::Frozen(fz) => {
                let mut out = Vec::with_capacity(fz.csc.nnz());
                for c in 0..self.n {
                    for (r, v) in fz.csc.col(c) {
                        out.push((r, c, v));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductance_stamp_solves_divider() {
        // 1 V source modelled as fixed residual on node 1 is awkward here;
        // instead solve G v = I directly: two resistors to ground from one
        // node driven by a 1 A injection.
        let mut st = Stamper::new(1);
        let n1 = NodeId(1);
        let v = [0.0];
        st.conductance(n1, NodeId::GROUND, 1.0, v[0], 0.0);
        st.conductance(n1, NodeId::GROUND, 1.0, v[0], 0.0);
        // Inject 1 A into node 1 (current flows ground -> node).
        st.current(NodeId::GROUND, n1, 1.0);
        let dx = st.solve().unwrap();
        assert!((dx[0] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn residual_reflects_candidate_voltages() {
        let mut st = Stamper::new(1);
        let n1 = NodeId(1);
        // At v = 2 with g = 3 to ground, the leaving current is 6.
        st.conductance(n1, NodeId::GROUND, 3.0, 2.0, 0.0);
        assert!((st.residual_norm() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn ground_contributions_are_dropped() {
        let mut st = Stamper::new(2);
        // A conductance fully between ground and ground must not panic or
        // touch the matrix.
        st.conductance(NodeId::GROUND, NodeId::GROUND, 1.0, 0.0, 0.0);
        assert_eq!(st.residual_norm(), 0.0);
    }

    #[test]
    fn sparse_backend_used_for_large_systems() {
        let n = DENSE_LIMIT + 10;
        let mut st = Stamper::new(n);
        assert!(!st.is_dense());
        for r in 0..n {
            st.j(r, r, 2.0);
            st.f(r, -2.0); // residual −2 → solve gives +1
        }
        let dx = st.solve().unwrap();
        assert!(dx.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn profile_pins_backend_against_size_default() {
        use crate::profile::{self, MatrixBackend, SolveProfile};
        assert!(Stamper::new(2).is_dense());
        let sparse = SolveProfile {
            matrix_backend: Some(MatrixBackend::Sparse),
            ..Default::default()
        };
        profile::with(sparse, || {
            assert!(!Stamper::new(2).is_dense());
        });
        let dense = SolveProfile {
            matrix_backend: Some(MatrixBackend::Dense),
            ..Default::default()
        };
        profile::with(dense, || {
            assert!(Stamper::new(DENSE_LIMIT + 10).is_dense());
        });
        // Restored after the scopes.
        assert!(Stamper::new(2).is_dense());
    }

    #[test]
    fn dense_limit_pins_backend_on_either_side() {
        // The crossover constant itself is the contract: at the limit the
        // dense kernel runs, one past it the sparse kernel runs.
        assert!(Stamper::new(DENSE_LIMIT).is_dense());
        assert!(!Stamper::new(DENSE_LIMIT + 1).is_dense());
    }

    #[test]
    fn ordering_engages_by_size_and_profile() {
        use crate::profile::{self, SolveProfile};
        assert!(!Stamper::new(ORDERING_LIMIT - 1).is_ordered());
        assert!(Stamper::new(ORDERING_LIMIT).is_ordered());
        // The escape hatch pins natural order at any size.
        let natural = SolveProfile {
            natural_ordering: true,
            ..Default::default()
        };
        profile::with(natural, || {
            assert!(!Stamper::new(ORDERING_LIMIT).is_ordered());
        });
        // Legacy linear algebra predates the ordering and implies it off.
        let legacy = SolveProfile {
            legacy_linear_algebra: true,
            ..Default::default()
        };
        profile::with(legacy, || {
            assert!(!Stamper::new(ORDERING_LIMIT).is_ordered());
        });
        // An overridden threshold forces it onto small systems.
        let forced = SolveProfile {
            ordering_limit: Some(0),
            ..Default::default()
        };
        profile::with(forced, || {
            assert!(Stamper::new(2).is_ordered());
        });
    }

    #[test]
    fn ordered_frozen_solve_matches_natural_solution() {
        use crate::profile::{self, MatrixBackend, SolveProfile};
        // A ladder with a hub row: enough structure that the ordering
        // actually permutes, solved through the full freeze/factor path.
        let n = 24;
        let stamp = |st: &mut Stamper| {
            for r in 0..n {
                st.j(r, r, 4.0 + 0.1 * r as f64);
                if r + 1 < n {
                    st.j(r, r + 1, -1.0);
                    st.j(r + 1, r, -1.0);
                }
                if r > 0 {
                    st.j(0, r, 0.25);
                    st.j(r, 0, 0.25);
                }
                st.f(r, -(1.0 + (r % 3) as f64));
            }
        };
        let run = |ordered: bool| -> Vec<f64> {
            let prof = SolveProfile {
                matrix_backend: Some(MatrixBackend::Sparse),
                ordering_limit: ordered.then_some(0),
                natural_ordering: !ordered,
                ..Default::default()
            };
            profile::with(prof, || {
                let mut st = Stamper::new(n);
                assert_eq!(st.is_ordered(), ordered);
                stamp(&mut st);
                let first = st.solve().unwrap();
                // Second pass exercises the frozen slot map + refactor.
                st.clear();
                stamp(&mut st);
                let second = st.solve().unwrap();
                for (a, b) in first.iter().zip(second.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "iterations must agree");
                }
                second
            })
        };
        let natural = run(false);
        let ordered = run(true);
        for (a, b) in natural.iter().zip(ordered.iter()) {
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "ordered {b} vs natural {a}"
            );
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut st = Stamper::new(2);
        st.j(0, 0, 1.0);
        st.f(1, 5.0);
        st.clear();
        assert_eq!(st.residual_norm(), 0.0);
        // After clear the matrix is singular (all zeros): solving must fail.
        assert!(st.solve().is_err());
    }

    #[test]
    fn non_finite_stamps_are_noted_with_attribution() {
        let mut st = Stamper::new(2);
        st.set_section(StampSection::Device(3));
        st.j(1, 0, f64::NAN);
        st.f(0, f64::INFINITY); // later entries don't overwrite the first
        let note = st.non_finite().expect("NaN must be noted");
        assert_eq!(note.section, StampSection::Device(3));
        assert_eq!(note.row, 1);
        assert_eq!(note.stage, "jacobian");
        st.clear();
        assert!(st.non_finite().is_none());
    }

    #[test]
    fn make_singular_defeats_the_solve() {
        for n in [2, DENSE_LIMIT + 2] {
            let mut st = Stamper::new(n);
            for r in 0..n {
                st.j(r, r, 1.0);
                st.f(r, 1.0);
            }
            st.make_singular(n / 2);
            assert!(st.solve().is_err(), "n = {n} should be singular");
        }
    }

    #[test]
    fn scale_jacobian_preserves_residual() {
        for n in [2, DENSE_LIMIT + 2] {
            let mut st = Stamper::new(n);
            for r in 0..n {
                st.j(r, r, 2.0);
                st.f(r, -4.0);
            }
            st.scale_jacobian(|| 0.5); // J = I now, residual untouched
            assert_eq!(st.residual_norm(), 4.0);
            let dx = st.solve().unwrap();
            assert!(dx.iter().all(|&v| (v - 4.0).abs() < 1e-12), "n = {n}");
        }
    }

    #[test]
    fn nonlinear_current_stamps_partials_on_both_rows() {
        let mut st = Stamper::new(3);
        let d = NodeId(1);
        let s = NodeId(2);
        let g = NodeId(3);
        st.nonlinear_current(d, s, 1e-3, &[(g, 2e-3), (d, 1e-4), (s, -2.1e-3)]);
        // Solve is meaningless here; just verify the residual bookkeeping.
        assert!((st.residual_norm() - 1e-3).abs() < 1e-18);
    }
}
