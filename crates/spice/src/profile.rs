//! Thread-local solve-robustness overrides.
//!
//! The retry ladder in `nemscmos-harness` re-runs a failed job with
//! progressively more conservative solver settings. Experiments call
//! high-level circuit APIs that build their own [`OpOptions`] /
//! [`TranOptions`] internally, so the overrides travel out-of-band: the
//! harness installs a [`SolveProfile`] for the current thread and every
//! analysis started on that thread folds it into its options.
//!
//! The default profile is all-neutral — when nothing is installed the
//! analyses behave exactly as their explicit options dictate.
//!
//! [`OpOptions`]: crate::analysis::op::OpOptions
//! [`TranOptions`]: crate::analysis::tran::TranOptions

use std::cell::Cell;

/// Which linear-algebra backend the MNA stamper should use.
///
/// By default the stamper picks dense LU for small systems and sparse
/// LU above a size threshold; the differential-testing suite in
/// `nemscmos-verify` pins each backend explicitly to prove they agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixBackend {
    /// Column-major dense matrix with partial-pivot LU.
    Dense,
    /// Triplet assembly compressed to CSC with Gilbert–Peierls LU.
    Sparse,
}

/// Conservative-solve overrides applied on top of analysis options.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveProfile {
    /// Raise the convergence shunt `gmin` to at least this value, and use
    /// a finer g_min-stepping ladder in the operating point.
    pub gmin_floor: Option<f64>,
    /// Raise the Newton iteration budget to at least this value.
    pub newton_min_iter: Option<usize>,
    /// Skip the direct Newton attempt in the operating point and go
    /// straight to the stepping continuation (g_min then source ramp).
    pub force_source_stepping: bool,
    /// Integrate transients with backward Euler only (maximum damping).
    pub force_backward_euler: bool,
    /// Pin the MNA matrix backend instead of the size-based default.
    pub matrix_backend: Option<MatrixBackend>,
    /// Disable the incremental linear-algebra fast path (pattern-frozen
    /// assembly, symbolic LU reuse, linear-circuit bypass) and re-solve
    /// every iteration from scratch. Used by differential testing to pin
    /// the slow path and by `perfbase` to measure the baseline; the fast
    /// path is constructed to be bitwise identical to this one.
    pub legacy_linear_algebra: bool,
    /// Disable structure-of-arrays batched device evaluation and load
    /// every device instance one at a time through virtual dispatch, the
    /// pre-batching code path verbatim. Mirrors `legacy_linear_algebra`:
    /// differential testing pins this to prove the batched path bitwise
    /// identical, and `perfbase` uses it for the baseline measurement.
    pub scalar_device_eval: bool,
    /// Disable the fill-reducing column ordering in the sparse LU and
    /// factor in natural (stamp) order — the pre-ordering code path
    /// verbatim. Mirrors `legacy_linear_algebra`/`scalar_device_eval`:
    /// the `ordered_vs_natural` differential pins this side to prove the
    /// ordered path solution-equivalent.
    pub natural_ordering: bool,
    /// Override the unknown-count threshold at or above which the sparse
    /// backend computes a fill-reducing column ordering (default
    /// `stamp::ORDERING_LIMIT`). `Some(0)` forces the ordering for every
    /// sparse system — differential testing uses this to exercise the
    /// ordered path on decks smaller than the default threshold.
    pub ordering_limit: Option<usize>,
}

impl SolveProfile {
    /// True when no override is active.
    pub fn is_neutral(&self) -> bool {
        *self == SolveProfile::default()
    }

    /// `gmin` with the floor applied.
    pub(crate) fn effective_gmin(&self, gmin: f64) -> f64 {
        match self.gmin_floor {
            Some(floor) => gmin.max(floor),
            None => gmin,
        }
    }

    /// `max_iter` with the boost applied.
    pub(crate) fn effective_max_iter(&self, max_iter: usize) -> usize {
        match self.newton_min_iter {
            Some(min) => max_iter.max(min),
            None => max_iter,
        }
    }
}

thread_local! {
    static ACTIVE: Cell<SolveProfile> = const { Cell::new(SolveProfile {
        gmin_floor: None,
        newton_min_iter: None,
        force_source_stepping: false,
        force_backward_euler: false,
        matrix_backend: None,
        legacy_linear_algebra: false,
        scalar_device_eval: false,
        natural_ordering: false,
        ordering_limit: None,
    }) };
}

/// The profile active on this thread.
pub fn current() -> SolveProfile {
    ACTIVE.with(|p| p.get())
}

/// Runs `f` with `profile` installed on this thread, restoring the
/// previous profile afterwards (also on unwind).
pub fn with<R>(profile: SolveProfile, f: impl FnOnce() -> R) -> R {
    struct Restore(SolveProfile);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(ACTIVE.with(|p| p.replace(profile)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_neutral() {
        assert!(current().is_neutral());
    }

    #[test]
    fn with_installs_and_restores() {
        let prof = SolveProfile {
            gmin_floor: Some(1e-9),
            ..Default::default()
        };
        with(prof, || {
            assert_eq!(current().gmin_floor, Some(1e-9));
            // Nested override wins, then unwinds.
            let inner = SolveProfile {
                force_backward_euler: true,
                ..Default::default()
            };
            with(inner, || assert!(current().force_backward_euler));
            assert_eq!(current(), prof);
        });
        assert!(current().is_neutral());
    }

    #[test]
    fn effective_values_apply_floors() {
        let p = SolveProfile {
            gmin_floor: Some(1e-9),
            newton_min_iter: Some(400),
            ..Default::default()
        };
        assert_eq!(p.effective_gmin(1e-12), 1e-9);
        assert_eq!(p.effective_gmin(1e-6), 1e-6);
        assert_eq!(p.effective_max_iter(100), 400);
        assert_eq!(p.effective_max_iter(1000), 1000);
    }
}
