//! Node identifiers and linear circuit elements.

use crate::waveform::Waveform;

/// Identifier of a circuit node.
///
/// Node `0` is the global ground reference; all other nodes are created by
/// [`Circuit::node`](crate::circuit::Circuit::node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The global ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// True for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// The raw node index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a linear element within a [`Circuit`](crate::circuit::Circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// Handle to a voltage source: keeps both the element index and the MNA
/// branch-current index, so results can be probed without re-deriving the
/// layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceRef {
    pub(crate) element: usize,
    pub(crate) branch: usize,
}

impl SourceRef {
    /// The element id of this source.
    pub fn element_id(self) -> ElementId {
        ElementId(self.element)
    }
}

/// A linear circuit element.
///
/// Nonlinear multi-terminal devices are *not* elements; they implement
/// [`Device`](crate::device::Device) instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Ideal resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Ideal capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be non-negative).
        farads: f64,
    },
    /// Ideal inductor between `a` and `b`; carries a branch current unknown.
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries (must be positive).
        henries: f64,
        /// MNA branch index of the inductor current.
        branch: usize,
    },
    /// Independent voltage source from `p` (+) to `m` (−); carries a branch
    /// current unknown. Positive branch current flows from `p` through the
    /// external circuit into `m`.
    VSource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        m: NodeId,
        /// Source waveform.
        wave: Waveform,
        /// MNA branch index of the source current.
        branch: usize,
    },
    /// Independent current source driving current from `from` to `to`
    /// *through the source*, i.e. extracting from `from`'s node and
    /// injecting into `to`'s node.
    ISource {
        /// Terminal the current leaves.
        from: NodeId,
        /// Terminal the current enters.
        to: NodeId,
        /// Source waveform (amperes).
        wave: Waveform,
    },
    /// Voltage-controlled current source: `i = gm (v(cp) − v(cm))` flowing
    /// from `op` to `om`.
    Vccs {
        /// Output positive terminal (current leaves this node).
        op: NodeId,
        /// Output negative terminal.
        om: NodeId,
        /// Control positive terminal.
        cp: NodeId,
        /// Control negative terminal.
        cm: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Voltage-controlled voltage source:
    /// `v(op) − v(om) = gain (v(cp) − v(cm))`; carries a branch unknown.
    Vcvs {
        /// Output positive terminal.
        op: NodeId,
        /// Output negative terminal.
        om: NodeId,
        /// Control positive terminal.
        cp: NodeId,
        /// Control negative terminal.
        cm: NodeId,
        /// Voltage gain.
        gain: f64,
        /// MNA branch index of the output current.
        branch: usize,
    },
}

impl Element {
    /// The MNA branch index, if this element carries a current unknown.
    pub fn branch(&self) -> Option<usize> {
        match self {
            Element::Inductor { branch, .. }
            | Element::VSource { branch, .. }
            | Element::Vcvs { branch, .. } => Some(*branch),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_identity() {
        assert!(NodeId::GROUND.is_ground());
        assert_eq!(NodeId::GROUND.index(), 0);
        assert!(!NodeId(3).is_ground());
    }

    #[test]
    fn branch_carriers() {
        let r = Element::Resistor {
            a: NodeId(1),
            b: NodeId(0),
            ohms: 1.0,
        };
        assert_eq!(r.branch(), None);
        let v = Element::VSource {
            p: NodeId(1),
            m: NodeId(0),
            wave: Waveform::dc(1.0),
            branch: 4,
        };
        assert_eq!(v.branch(), Some(4));
    }
}
