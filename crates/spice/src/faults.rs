//! Deterministic, seeded fault injection for the solver.
//!
//! Hybrid NEMS-CMOS circuits are numerically hostile — pull-in/pull-out
//! hysteresis and near-vertical switching produce stiff, near-singular
//! Newton systems — and the workspace ships a whole robustness layer
//! (internal operating-point fallbacks, the harness retry ladder, the
//! numerical health guards in [`crate::guard`]) to survive them. This
//! module *exercises* that layer: a [`FaultPlan`] installed for the
//! current thread (analogous to [`crate::profile`]) perturbs Jacobian
//! stamps, poisons residuals with NaN, forces singular pivots, or
//! triggers timestep-rejection storms at chosen Newton iterations.
//!
//! Design constraints:
//!
//! - **Zero-cost when idle.** With no plan installed every hook is a
//!   thread-local load and a branch; no fault code touches the assembly
//!   or integration hot paths.
//! - **Deterministic.** Firing is a pure function of the plan, the
//!   thread's Newton-iteration count since installation, and the active
//!   [`SolveProfile`](crate::profile::SolveProfile); the Jacobian
//!   perturbation stream is seeded by [`FaultPlan::seed`]. The same plan
//!   on the same job always produces the same failure.
//! - **No silently-wrong numbers.** Every fault either leaves the
//!   residual exact ([`FaultKind::JacobianPerturb`] can slow or break
//!   Newton, but a converged solution still satisfies the *unperturbed*
//!   circuit equations) or produces a typed error / rejected step. A
//!   fault can therefore never corrupt a result that is reported as
//!   successful.
//!
//! The [`Disarm`] condition keys a fault off the retry-ladder profile,
//! so tests and soak drivers can demand "fail until the ladder reaches
//! source stepping" and assert the exact rescuing rung.

use std::cell::Cell;

use nemscmos_numeric::rng::{Rand64, SplitMix64};

/// What the fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Multiplies every stamped Jacobian entry by `1 + relative * u`,
    /// with `u` drawn uniformly from `[-1, 1]` out of the plan's seeded
    /// stream. The residual stays exact, so this degrades or destroys
    /// *convergence* without ever being able to corrupt a converged
    /// solution.
    JacobianPerturb {
        /// Relative perturbation amplitude (`10.0` reliably breaks
        /// Newton; `1e-3` merely slows it).
        relative: f64,
    },
    /// Poisons one residual entry with NaN, exercising the non-finite
    /// assembly guard ([`crate::SpiceError::NonFinite`]).
    NanResidual,
    /// Zeroes an entire Jacobian row (chosen from the plan seed), forcing
    /// a singular pivot in the linear solver
    /// ([`crate::SpiceError::SingularSystem`]).
    SingularPivot,
    /// Rejects every accepted transient step while armed, driving the
    /// step size toward underflow (a timestep-rejection storm). Has no
    /// effect on DC analyses.
    TimestepStorm,
}

/// When the fault stops firing.
///
/// The profile-keyed variants disarm once the harness retry ladder
/// installs the matching override, so a plan can be rescued at an exact
/// rung: `WhenGminFloor` faults survive the `Direct` attempt and die at
/// `TightGmin`, and so on down the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disarm {
    /// Never disarms: the job must surface a typed diagnostic.
    Never,
    /// Disarms after firing this many times.
    AfterTriggers(u32),
    /// Disarms once the active [`SolveProfile`](crate::profile::SolveProfile)
    /// raises the g_min floor (retry ladder rung `TightGmin` and above).
    WhenGminFloor,
    /// Disarms once source stepping is forced (rung `SourceStepping` and
    /// above).
    WhenSourceStepping,
    /// Disarms once backward-Euler-only integration is forced (rung
    /// `BackwardEuler`).
    WhenBackwardEuler,
}

/// A complete, deterministic description of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Newton iterations (counted across the whole installation scope)
    /// to let pass unharmed before the fault arms.
    pub skip_iters: u64,
    /// When the fault stops firing.
    pub disarm: Disarm,
    /// Seed for the perturbation stream (and the row choice of
    /// [`FaultKind::SingularPivot`]).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that fires `kind` from the first Newton iteration until
    /// `disarm` is met.
    pub fn immediate(kind: FaultKind, disarm: Disarm, seed: u64) -> FaultPlan {
        FaultPlan {
            kind,
            skip_iters: 0,
            disarm,
            seed,
        }
    }

    fn armed(&self, state: &FaultState) -> bool {
        // `iters` counts this iteration too (incremented before the check),
        // so the first `skip_iters` iterations pass unharmed.
        if state.iters <= self.skip_iters {
            return false;
        }
        let prof = crate::profile::current();
        match self.disarm {
            Disarm::Never => true,
            Disarm::AfterTriggers(n) => state.fired < n,
            Disarm::WhenGminFloor => prof.gmin_floor.is_none(),
            Disarm::WhenSourceStepping => !prof.force_source_stepping,
            Disarm::WhenBackwardEuler => !prof.force_backward_euler,
        }
    }
}

/// Mutable per-installation bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct FaultState {
    /// Newton iterations observed since the plan was installed.
    iters: u64,
    /// Times the fault has fired.
    fired: u32,
    /// Perturbation-stream state (SplitMix64, seeded from the plan).
    stream: u64,
}

thread_local! {
    static PLAN: Cell<Option<FaultPlan>> = const { Cell::new(None) };
    static STATE: Cell<FaultState> = const { Cell::new(FaultState {
        iters: 0,
        fired: 0,
        stream: 0,
    }) };
}

/// True when a fault plan is installed on this thread.
pub fn active() -> bool {
    PLAN.with(|p| p.get()).is_some()
}

/// Times the installed plan has fired so far (0 with no plan).
pub fn triggers_fired() -> u32 {
    STATE.with(|s| s.get()).fired
}

/// Runs `f` with `plan` installed on this thread, restoring the previous
/// plan (and its trigger bookkeeping) afterwards, also on unwind.
pub fn with<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    with_opt(Some(plan), f)
}

/// [`with`], but a `None` plan just runs `f` fault-free (convenient for
/// drivers that decide per job whether to inject).
pub fn with_opt<R>(plan: Option<FaultPlan>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<FaultPlan>, FaultState);
    impl Drop for Restore {
        fn drop(&mut self) {
            PLAN.with(|p| p.set(self.0));
            STATE.with(|s| s.set(self.1));
        }
    }
    let _restore = Restore(
        PLAN.with(|p| p.replace(plan)),
        STATE.with(|s| {
            s.replace(FaultState {
                iters: 0,
                fired: 0,
                stream: plan.map_or(0, |pl| pl.seed),
            })
        }),
    );
    f()
}

/// Hook called once per Newton iteration by the engine: counts the
/// iteration and returns the fault to apply to this iteration's assembly,
/// if any. [`FaultKind::TimestepStorm`] is not an assembly fault and is
/// never returned here.
pub(crate) fn newton_fault() -> Option<FaultKind> {
    let plan = PLAN.with(|p| p.get())?;
    STATE.with(|s| {
        let mut state = s.get();
        state.iters += 1;
        let fire = plan.armed(&state) && plan.kind != FaultKind::TimestepStorm;
        if fire {
            state.fired += 1;
        }
        s.set(state);
        fire.then_some(plan.kind)
    })
}

/// Hook called by the transient accept path: true forces rejection of the
/// step that just converged (a [`FaultKind::TimestepStorm`] firing).
pub(crate) fn step_fault() -> bool {
    let Some(plan) = PLAN.with(|p| p.get()) else {
        return false;
    };
    if plan.kind != FaultKind::TimestepStorm {
        return false;
    }
    STATE.with(|s| {
        let mut state = s.get();
        let fire = plan.armed(&state);
        if fire {
            state.fired += 1;
        }
        s.set(state);
        fire
    })
}

/// Next factor of the seeded Jacobian-perturbation stream:
/// `1 + relative * u`, `u` uniform in `[-1, 1]`.
pub(crate) fn perturb_factor(relative: f64) -> f64 {
    STATE.with(|s| {
        let mut state = s.get();
        let mut sm = SplitMix64::new(state.stream);
        let raw = sm.next_u64();
        state.stream = raw;
        s.set(state);
        // 53-bit mantissa to [0, 1), then to [-1, 1].
        let u01 = (raw >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + relative * (2.0 * u01 - 1.0)
    })
}

/// Deterministic row choice for [`FaultKind::SingularPivot`] in a system
/// of `n` unknowns.
pub(crate) fn singular_row(n: usize) -> usize {
    let seed = PLAN.with(|p| p.get()).map_or(0, |pl| pl.seed);
    if n == 0 {
        0
    } else {
        (seed % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{self, SolveProfile};

    fn nan_plan(disarm: Disarm) -> FaultPlan {
        FaultPlan::immediate(FaultKind::NanResidual, disarm, 7)
    }

    #[test]
    fn idle_hooks_are_inert() {
        assert!(!active());
        assert_eq!(newton_fault(), None);
        assert!(!step_fault());
        assert_eq!(triggers_fired(), 0);
    }

    #[test]
    fn plan_installs_and_restores() {
        with(nan_plan(Disarm::Never), || {
            assert!(active());
            assert_eq!(newton_fault(), Some(FaultKind::NanResidual));
            assert_eq!(triggers_fired(), 1);
        });
        assert!(!active());
        assert_eq!(triggers_fired(), 0);
    }

    #[test]
    fn skip_iters_delays_arming() {
        let plan = FaultPlan {
            skip_iters: 2,
            ..nan_plan(Disarm::Never)
        };
        with(plan, || {
            assert_eq!(newton_fault(), None);
            assert_eq!(newton_fault(), None);
            assert_eq!(newton_fault(), Some(FaultKind::NanResidual));
        });
    }

    #[test]
    fn trigger_budget_disarms() {
        with(nan_plan(Disarm::AfterTriggers(2)), || {
            assert!(newton_fault().is_some());
            assert!(newton_fault().is_some());
            assert_eq!(newton_fault(), None);
            assert_eq!(triggers_fired(), 2);
        });
    }

    #[test]
    fn profile_keyed_disarm_follows_retry_ladder() {
        with(nan_plan(Disarm::WhenGminFloor), || {
            assert!(newton_fault().is_some(), "neutral profile: armed");
            let rung = SolveProfile {
                gmin_floor: Some(1e-9),
                ..Default::default()
            };
            profile::with(rung, || {
                assert_eq!(newton_fault(), None, "gmin floor active: disarmed");
            });
            assert!(newton_fault().is_some(), "profile restored: armed again");
        });
    }

    #[test]
    fn storm_fires_only_on_step_hook() {
        let plan = FaultPlan::immediate(FaultKind::TimestepStorm, Disarm::Never, 1);
        with(plan, || {
            assert_eq!(newton_fault(), None, "storms are not assembly faults");
            assert!(step_fault());
        });
    }

    #[test]
    fn perturb_stream_is_seeded_and_bounded() {
        let plan = FaultPlan::immediate(
            FaultKind::JacobianPerturb { relative: 0.5 },
            Disarm::Never,
            42,
        );
        let a: Vec<f64> = with(plan, || (0..8).map(|_| perturb_factor(0.5)).collect());
        let b: Vec<f64> = with(plan, || (0..8).map(|_| perturb_factor(0.5)).collect());
        assert_eq!(a, b, "same seed, same stream");
        assert!(a.iter().all(|&f| (0.5..=1.5).contains(&f)));
        assert!(a.windows(2).any(|w| w[0] != w[1]), "stream varies");
    }

    #[test]
    fn nested_plans_restore_outer_bookkeeping() {
        with(nan_plan(Disarm::Never), || {
            let _ = newton_fault();
            assert_eq!(triggers_fired(), 1);
            with(nan_plan(Disarm::Never), || {
                assert_eq!(triggers_fired(), 0, "inner scope starts fresh");
            });
            assert_eq!(triggers_fired(), 1, "outer bookkeeping restored");
        });
    }
}
