//! Per-thread solver telemetry counters.
//!
//! Every analysis in this crate increments a set of thread-local,
//! monotonically increasing counters: Newton iterations, LU
//! factorizations, transient step rejections/acceptances, and
//! non-convergence events. Orchestration layers (the `nemscmos-harness`
//! crate) attribute work to a job by taking a [`snapshot`] before and
//! after it and diffing — there is no reset, so nested scopes compose.
//!
//! Counters are thread-local; when a caller fans work out to other
//! threads it is responsible for summing the child deltas back into its
//! own thread with [`add`] (the harness pool does this automatically).
//!
//! # Example
//!
//! ```
//! use nemscmos_spice::stats;
//!
//! let before = stats::snapshot();
//! // ... run an analysis ...
//! let spent = stats::snapshot().delta_since(&before);
//! assert_eq!(spent.newton_iterations, 0); // nothing ran in this doctest
//! ```

use std::cell::Cell;
use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative solver-effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Newton iterations applied (converged or not).
    pub newton_iterations: u64,
    /// Jacobian LU factorizations (one per Newton iteration that reaches
    /// the linear solve).
    pub lu_factorizations: u64,
    /// Transient steps rejected (Newton failure or LTE violation).
    pub step_rejections: u64,
    /// Transient steps accepted.
    pub steps_accepted: u64,
    /// Newton solves that gave up (triggering fallbacks or job retries).
    pub nonconvergence_events: u64,
    /// Assemblies served by the pattern-frozen slot map (no per-iteration
    /// triplet sort/dedup/alloc).
    pub slot_cache_hits: u64,
    /// Sparse factorizations served by numeric-only refactorization over
    /// a recorded symbolic structure.
    pub symbolic_reuses: u64,
    /// Numeric-only refactorizations rejected by the pivot monitor and
    /// redone as fresh fully-pivoted factorizations.
    pub refactor_fallbacks: u64,
    /// Linear-circuit solves that reused the previous factorization
    /// outright (RHS-only re-solve).
    pub bypass_solves: u64,
    /// Assemblies whose device loads went through the structure-of-arrays
    /// batched evaluation path (zero when the circuit has no batchable
    /// devices or [`SolveProfile::scalar_device_eval`] pins the scalar
    /// path).
    ///
    /// [`SolveProfile::scalar_device_eval`]:
    ///     crate::profile::SolveProfile::scalar_device_eval
    pub batched_evals: u64,
    /// Wall-clock nanoseconds spent loading devices during assembly
    /// (gather + model evaluation + Jacobian/residual scatter). Exactly
    /// zero for circuits without nonlinear devices.
    pub device_eval_ns: u64,
    /// Wall-clock nanoseconds spent in the linear solve (factorization,
    /// refactorization, or bypass back-substitution).
    pub linear_solve_ns: u64,
    /// Summed `nnz(L + U)` (diagonal included) over the fresh sparse
    /// symbolic factorizations of the fast path — the honest fill cost
    /// of the chosen column ordering. Refactorizations reuse the recorded
    /// pattern and do not re-count; the legacy and dense paths never
    /// count.
    pub fill_nnz: u64,
    /// Wall-clock nanoseconds spent computing fill-reducing column
    /// orderings (once per frozen pattern; zero when the ordering does
    /// not engage).
    pub ordering_ns: u64,
}

impl SolverStats {
    /// Counters accumulated since `earlier` (which must be an older
    /// snapshot from the same thread, or a summed baseline).
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            newton_iterations: self.newton_iterations - earlier.newton_iterations,
            lu_factorizations: self.lu_factorizations - earlier.lu_factorizations,
            step_rejections: self.step_rejections - earlier.step_rejections,
            steps_accepted: self.steps_accepted - earlier.steps_accepted,
            nonconvergence_events: self.nonconvergence_events - earlier.nonconvergence_events,
            slot_cache_hits: self.slot_cache_hits - earlier.slot_cache_hits,
            symbolic_reuses: self.symbolic_reuses - earlier.symbolic_reuses,
            refactor_fallbacks: self.refactor_fallbacks - earlier.refactor_fallbacks,
            bypass_solves: self.bypass_solves - earlier.bypass_solves,
            batched_evals: self.batched_evals - earlier.batched_evals,
            device_eval_ns: self.device_eval_ns - earlier.device_eval_ns,
            linear_solve_ns: self.linear_solve_ns - earlier.linear_solve_ns,
            fill_nnz: self.fill_nnz - earlier.fill_nnz,
            ordering_ns: self.ordering_ns - earlier.ordering_ns,
        }
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SolverStats::default()
    }
}

impl Add for SolverStats {
    type Output = SolverStats;
    fn add(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            newton_iterations: self.newton_iterations + rhs.newton_iterations,
            lu_factorizations: self.lu_factorizations + rhs.lu_factorizations,
            step_rejections: self.step_rejections + rhs.step_rejections,
            steps_accepted: self.steps_accepted + rhs.steps_accepted,
            nonconvergence_events: self.nonconvergence_events + rhs.nonconvergence_events,
            slot_cache_hits: self.slot_cache_hits + rhs.slot_cache_hits,
            symbolic_reuses: self.symbolic_reuses + rhs.symbolic_reuses,
            refactor_fallbacks: self.refactor_fallbacks + rhs.refactor_fallbacks,
            bypass_solves: self.bypass_solves + rhs.bypass_solves,
            batched_evals: self.batched_evals + rhs.batched_evals,
            device_eval_ns: self.device_eval_ns + rhs.device_eval_ns,
            linear_solve_ns: self.linear_solve_ns + rhs.linear_solve_ns,
            fill_nnz: self.fill_nnz + rhs.fill_nnz,
            ordering_ns: self.ordering_ns + rhs.ordering_ns,
        }
    }
}

impl AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        *self = *self + rhs;
    }
}

/// Cross-thread view of a running solve, for watchdog supervision.
///
/// The thread-local counters above are invisible to other threads; a
/// [`Heartbeat`] mirrors them (plus a coarse *progress* counter and the
/// current simulation time) into shared atomics that an installed
/// [`budget::Budget`](crate::budget::Budget) publishes on every Newton
/// iteration. A supervising watchdog reads the snapshot — and in
/// particular [`progress`](Heartbeat::progress), which ticks only on
/// accepted transient steps and completed DC solves — to tell a solve
/// that is grinding forward from one that is wedged.
#[derive(Debug, Default)]
pub struct Heartbeat {
    newton_iterations: AtomicU64,
    lu_factorizations: AtomicU64,
    step_rejections: AtomicU64,
    steps_accepted: AtomicU64,
    progress: AtomicU64,
    sim_time_bits: AtomicU64,
}

impl Heartbeat {
    /// A fresh heartbeat with all counters at zero.
    pub fn new() -> Heartbeat {
        Heartbeat::default()
    }

    /// Publishes the solve's effort counters (called from inside the
    /// Newton loop via the installed budget).
    pub fn publish(&self, spent: &SolverStats) {
        self.newton_iterations
            .store(spent.newton_iterations, Ordering::Relaxed);
        self.lu_factorizations
            .store(spent.lu_factorizations, Ordering::Relaxed);
        self.step_rejections
            .store(spent.step_rejections, Ordering::Relaxed);
        self.steps_accepted
            .store(spent.steps_accepted, Ordering::Relaxed);
    }

    /// Marks forward progress (an accepted transient step or a completed
    /// DC solve). Stall detection keys on this counter, *not* on raw
    /// Newton iterations — a timestep-rejection storm burns iterations
    /// without advancing and must still read as a stall.
    pub fn tick_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the last accepted simulation time.
    pub fn set_sim_time(&self, t: f64) {
        self.sim_time_bits.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Monotone forward-progress counter (see
    /// [`tick_progress`](Heartbeat::tick_progress)).
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// The last accepted simulation time, `0.0` until a transient step
    /// lands.
    pub fn sim_time(&self) -> f64 {
        f64::from_bits(self.sim_time_bits.load(Ordering::Relaxed))
    }

    /// The most recently published effort counters.
    pub fn snapshot(&self) -> SolverStats {
        SolverStats {
            newton_iterations: self.newton_iterations.load(Ordering::Relaxed),
            lu_factorizations: self.lu_factorizations.load(Ordering::Relaxed),
            step_rejections: self.step_rejections.load(Ordering::Relaxed),
            steps_accepted: self.steps_accepted.load(Ordering::Relaxed),
            nonconvergence_events: 0,
            slot_cache_hits: 0,
            symbolic_reuses: 0,
            refactor_fallbacks: 0,
            bypass_solves: 0,
            batched_evals: 0,
            device_eval_ns: 0,
            linear_solve_ns: 0,
            fill_nnz: 0,
            ordering_ns: 0,
        }
    }
}

thread_local! {
    static COUNTERS: Cell<SolverStats> = const { Cell::new(SolverStats {
        newton_iterations: 0,
        lu_factorizations: 0,
        step_rejections: 0,
        steps_accepted: 0,
        nonconvergence_events: 0,
        slot_cache_hits: 0,
        symbolic_reuses: 0,
        refactor_fallbacks: 0,
        bypass_solves: 0,
        batched_evals: 0,
        device_eval_ns: 0,
        linear_solve_ns: 0,
        fill_nnz: 0,
        ordering_ns: 0,
    }) };
}

/// Current counter values for this thread.
pub fn snapshot() -> SolverStats {
    COUNTERS.with(|c| c.get())
}

/// Adds `delta` into this thread's counters — used to fold work done on
/// worker threads back into the spawning thread.
pub fn add(delta: SolverStats) {
    COUNTERS.with(|c| c.set(c.get() + delta));
}

/// Runs `f` and returns its result together with the solver effort it
/// spent on this thread.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, SolverStats) {
    let before = snapshot();
    let r = f();
    (r, snapshot().delta_since(&before))
}

pub(crate) fn count_newton_iterations(n: u64) {
    add(SolverStats {
        newton_iterations: n,
        ..SolverStats::default()
    });
}

pub(crate) fn count_lu_factorization() {
    add(SolverStats {
        lu_factorizations: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_step_rejection() {
    add(SolverStats {
        step_rejections: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_step_accepted() {
    add(SolverStats {
        steps_accepted: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_nonconvergence() {
    add(SolverStats {
        nonconvergence_events: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_slot_cache_hit() {
    add(SolverStats {
        slot_cache_hits: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_symbolic_reuse() {
    add(SolverStats {
        symbolic_reuses: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_refactor_fallback() {
    add(SolverStats {
        refactor_fallbacks: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_bypass_solve() {
    add(SolverStats {
        bypass_solves: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_batched_eval() {
    add(SolverStats {
        batched_evals: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_device_eval_ns(ns: u64) {
    add(SolverStats {
        device_eval_ns: ns,
        ..SolverStats::default()
    });
}

pub(crate) fn count_linear_solve_ns(ns: u64) {
    add(SolverStats {
        linear_solve_ns: ns,
        ..SolverStats::default()
    });
}

pub(crate) fn count_fill_nnz(nnz: u64) {
    add(SolverStats {
        fill_nnz: nnz,
        ..SolverStats::default()
    });
}

pub(crate) fn count_ordering_ns(ns: u64) {
    add(SolverStats {
        ordering_ns: ns,
        ..SolverStats::default()
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_diffable() {
        let a = snapshot();
        count_newton_iterations(3);
        count_lu_factorization();
        count_step_rejection();
        count_step_accepted();
        count_nonconvergence();
        count_slot_cache_hit();
        count_symbolic_reuse();
        count_refactor_fallback();
        count_bypass_solve();
        count_batched_eval();
        count_device_eval_ns(250);
        count_linear_solve_ns(750);
        count_fill_nnz(420);
        count_ordering_ns(99);
        let d = snapshot().delta_since(&a);
        assert_eq!(d.newton_iterations, 3);
        assert_eq!(d.lu_factorizations, 1);
        assert_eq!(d.step_rejections, 1);
        assert_eq!(d.steps_accepted, 1);
        assert_eq!(d.nonconvergence_events, 1);
        assert_eq!(d.slot_cache_hits, 1);
        assert_eq!(d.symbolic_reuses, 1);
        assert_eq!(d.refactor_fallbacks, 1);
        assert_eq!(d.bypass_solves, 1);
        assert_eq!(d.batched_evals, 1);
        assert_eq!(d.device_eval_ns, 250);
        assert_eq!(d.linear_solve_ns, 750);
        assert_eq!(d.fill_nnz, 420);
        assert_eq!(d.ordering_ns, 99);
        assert!(!d.is_zero());
    }

    #[test]
    fn measure_scopes_compose() {
        let ((), outer) = measure(|| {
            count_newton_iterations(2);
            let ((), inner) = measure(|| count_newton_iterations(5));
            assert_eq!(inner.newton_iterations, 5);
        });
        assert_eq!(outer.newton_iterations, 7);
    }

    #[test]
    fn heartbeat_mirrors_counters_across_threads() {
        use std::sync::Arc;
        let hb = Arc::new(Heartbeat::new());
        let remote = Arc::clone(&hb);
        std::thread::spawn(move || {
            remote.publish(&SolverStats {
                newton_iterations: 42,
                lu_factorizations: 40,
                step_rejections: 3,
                steps_accepted: 9,
                nonconvergence_events: 1,
                ..Default::default()
            });
            remote.tick_progress();
            remote.set_sim_time(1.5e-9);
        })
        .join()
        .unwrap();
        let snap = hb.snapshot();
        assert_eq!(snap.newton_iterations, 42);
        assert_eq!(snap.steps_accepted, 9);
        assert_eq!(snap.nonconvergence_events, 0); // not mirrored
        assert_eq!(hb.progress(), 1);
        assert_eq!(hb.sim_time(), 1.5e-9);
    }

    #[test]
    fn add_folds_external_work() {
        let before = snapshot();
        add(SolverStats {
            newton_iterations: 11,
            ..Default::default()
        });
        assert_eq!(snapshot().delta_since(&before).newton_iterations, 11);
    }
}
