//! Per-thread solver telemetry counters.
//!
//! Every analysis in this crate increments a set of thread-local,
//! monotonically increasing counters: Newton iterations, LU
//! factorizations, transient step rejections/acceptances, and
//! non-convergence events. Orchestration layers (the `nemscmos-harness`
//! crate) attribute work to a job by taking a [`snapshot`] before and
//! after it and diffing — there is no reset, so nested scopes compose.
//!
//! Counters are thread-local; when a caller fans work out to other
//! threads it is responsible for summing the child deltas back into its
//! own thread with [`add`] (the harness pool does this automatically).
//!
//! # Example
//!
//! ```
//! use nemscmos_spice::stats;
//!
//! let before = stats::snapshot();
//! // ... run an analysis ...
//! let spent = stats::snapshot().delta_since(&before);
//! assert_eq!(spent.newton_iterations, 0); // nothing ran in this doctest
//! ```

use std::cell::Cell;
use std::ops::{Add, AddAssign};

/// Cumulative solver-effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Newton iterations applied (converged or not).
    pub newton_iterations: u64,
    /// Jacobian LU factorizations (one per Newton iteration that reaches
    /// the linear solve).
    pub lu_factorizations: u64,
    /// Transient steps rejected (Newton failure or LTE violation).
    pub step_rejections: u64,
    /// Transient steps accepted.
    pub steps_accepted: u64,
    /// Newton solves that gave up (triggering fallbacks or job retries).
    pub nonconvergence_events: u64,
}

impl SolverStats {
    /// Counters accumulated since `earlier` (which must be an older
    /// snapshot from the same thread, or a summed baseline).
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            newton_iterations: self.newton_iterations - earlier.newton_iterations,
            lu_factorizations: self.lu_factorizations - earlier.lu_factorizations,
            step_rejections: self.step_rejections - earlier.step_rejections,
            steps_accepted: self.steps_accepted - earlier.steps_accepted,
            nonconvergence_events: self.nonconvergence_events - earlier.nonconvergence_events,
        }
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SolverStats::default()
    }
}

impl Add for SolverStats {
    type Output = SolverStats;
    fn add(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            newton_iterations: self.newton_iterations + rhs.newton_iterations,
            lu_factorizations: self.lu_factorizations + rhs.lu_factorizations,
            step_rejections: self.step_rejections + rhs.step_rejections,
            steps_accepted: self.steps_accepted + rhs.steps_accepted,
            nonconvergence_events: self.nonconvergence_events + rhs.nonconvergence_events,
        }
    }
}

impl AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        *self = *self + rhs;
    }
}

thread_local! {
    static COUNTERS: Cell<SolverStats> = const { Cell::new(SolverStats {
        newton_iterations: 0,
        lu_factorizations: 0,
        step_rejections: 0,
        steps_accepted: 0,
        nonconvergence_events: 0,
    }) };
}

/// Current counter values for this thread.
pub fn snapshot() -> SolverStats {
    COUNTERS.with(|c| c.get())
}

/// Adds `delta` into this thread's counters — used to fold work done on
/// worker threads back into the spawning thread.
pub fn add(delta: SolverStats) {
    COUNTERS.with(|c| c.set(c.get() + delta));
}

/// Runs `f` and returns its result together with the solver effort it
/// spent on this thread.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, SolverStats) {
    let before = snapshot();
    let r = f();
    (r, snapshot().delta_since(&before))
}

pub(crate) fn count_newton_iterations(n: u64) {
    add(SolverStats {
        newton_iterations: n,
        ..SolverStats::default()
    });
}

pub(crate) fn count_lu_factorization() {
    add(SolverStats {
        lu_factorizations: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_step_rejection() {
    add(SolverStats {
        step_rejections: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_step_accepted() {
    add(SolverStats {
        steps_accepted: 1,
        ..SolverStats::default()
    });
}

pub(crate) fn count_nonconvergence() {
    add(SolverStats {
        nonconvergence_events: 1,
        ..SolverStats::default()
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_diffable() {
        let a = snapshot();
        count_newton_iterations(3);
        count_lu_factorization();
        count_step_rejection();
        count_step_accepted();
        count_nonconvergence();
        let d = snapshot().delta_since(&a);
        assert_eq!(d.newton_iterations, 3);
        assert_eq!(d.lu_factorizations, 1);
        assert_eq!(d.step_rejections, 1);
        assert_eq!(d.steps_accepted, 1);
        assert_eq!(d.nonconvergence_events, 1);
        assert!(!d.is_zero());
    }

    #[test]
    fn measure_scopes_compose() {
        let ((), outer) = measure(|| {
            count_newton_iterations(2);
            let ((), inner) = measure(|| count_newton_iterations(5));
            assert_eq!(inner.newton_iterations, 5);
        });
        assert_eq!(outer.newton_iterations, 7);
    }

    #[test]
    fn add_folds_external_work() {
        let before = snapshot();
        add(SolverStats {
            newton_iterations: 11,
            ..Default::default()
        });
        assert_eq!(snapshot().delta_since(&before).newton_iterations, 11);
    }
}
