//! Numerical health guards: non-finite attribution, singular-pivot
//! naming, and the post-solve KCL residual audit.
//!
//! The Newton loop judges convergence on the update norm `‖Δx‖`, so a
//! converged point is not automatically a point where Kirchhoff's current
//! law holds to high precision — and a NaN produced deep inside a device
//! model would otherwise surface only as an opaque "non-finite Newton
//! update". This module gives every such failure a name:
//!
//! * [`unknown_name`] maps a raw MNA unknown index back to its circuit
//!   meaning (node name, branch current of a concrete element, or a
//!   device internal unknown), used by
//!   [`SpiceError::SingularSystem`](crate::SpiceError::SingularSystem)
//!   and [`SpiceError::NonFinite`](crate::SpiceError::NonFinite).
//! * [`GuardConfig`] is a thread-local toggle (same out-of-band pattern
//!   as [`crate::profile`]) for the optional KCL audit: after every
//!   converged Newton solve the engine re-assembles the residual at the
//!   converged point and fails with
//!   [`SpiceError::KclViolation`](crate::SpiceError::KclViolation) if any
//!   node row exceeds the tolerance.
//!
//! The audit is **off by default**: enabling it costs one extra assembly
//! per converged solve, and keeping the default path untouched preserves
//! bitwise-identical results for existing analyses.

use std::cell::Cell;

use crate::circuit::Circuit;
use crate::element::{Element, NodeId};
use crate::stamp::{NonFiniteNote, StampSection};
use crate::SpiceError;

/// Thread-local health-guard configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GuardConfig {
    /// When set, every converged Newton solve is followed by a KCL audit:
    /// the residual is re-assembled at the converged point and the solve
    /// fails with [`SpiceError::KclViolation`] if any node row exceeds
    /// this tolerance (amperes). `None` (the default) disables the audit.
    pub kcl_tol: Option<f64>,
}

impl GuardConfig {
    /// A config that audits KCL to `tol` amperes after every solve.
    pub fn kcl(tol: f64) -> GuardConfig {
        GuardConfig { kcl_tol: Some(tol) }
    }
}

thread_local! {
    static ACTIVE: Cell<GuardConfig> = const { Cell::new(GuardConfig { kcl_tol: None }) };
}

/// The guard configuration active on this thread.
pub fn current() -> GuardConfig {
    ACTIVE.with(|c| c.get())
}

/// Runs `f` with `cfg` active on this thread, restoring the previous
/// configuration afterwards, also on unwind.
pub fn with<R>(cfg: GuardConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(GuardConfig);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(ACTIVE.with(|c| c.replace(cfg)));
    f()
}

/// The active KCL audit tolerance, if the audit is enabled.
pub(crate) fn kcl_tolerance() -> Option<f64> {
    current().kcl_tol
}

/// Human-readable description of a raw MNA unknown index: the node name,
/// the branch current of a concrete element, or a device internal
/// unknown. Indices beyond the layout degrade to `"unknown #idx"` rather
/// than panicking — this runs on error paths.
pub fn unknown_name(ckt: &Circuit, idx: usize) -> String {
    let nn = ckt.num_node_unknowns();
    if idx < nn {
        return format!("node '{}'", ckt.node_name(NodeId(idx + 1)));
    }
    let branch = idx - nn;
    if branch < ckt.num_branches() {
        for e in ckt.elements() {
            if e.branch() == Some(branch) {
                return format!("branch current of {}", describe_element(ckt, e));
            }
        }
        return format!("branch current #{branch}");
    }
    // Device internal unknowns: bases are assigned in device order by
    // `Circuit::finalize_layout`, so replaying that walk recovers the
    // owner without duplicating layout state.
    let mut base = nn + ckt.num_branches();
    for dev in ckt.devices() {
        let k = dev.num_internal();
        if idx < base + k {
            return format!(
                "internal unknown #{} of device '{}'",
                idx - base,
                dev.name()
            );
        }
        base += k;
    }
    format!("unknown #{idx}")
}

fn describe_element(ckt: &Circuit, e: &Element) -> String {
    let nodes = |a: NodeId, b: NodeId| format!("{}-{}", ckt.node_name(a), ckt.node_name(b));
    match *e {
        Element::Inductor { a, b, .. } => format!("inductor {}", nodes(a, b)),
        Element::VSource { p, m, .. } => format!("voltage source {}", nodes(p, m)),
        Element::Vcvs { op, om, .. } => format!("vcvs {}", nodes(op, om)),
        _ => "element".to_string(),
    }
}

/// What stamped the offending value, for the `device` field of
/// [`SpiceError::NonFinite`].
pub(crate) fn section_label(ckt: &Circuit, section: StampSection) -> String {
    match section {
        StampSection::Linear => "linear elements".to_string(),
        StampSection::Device(i) => match ckt.devices().get(i) {
            Some(d) => format!("device '{}'", d.name()),
            None => format!("device #{i}"),
        },
        StampSection::Solver => "solver internals (gmin/IC clamps)".to_string(),
        StampSection::Fault => "fault injection".to_string(),
    }
}

/// Builds the typed non-finite-assembly error from a stamper note.
pub(crate) fn non_finite_error(ckt: &Circuit, note: &NonFiniteNote, time: f64) -> SpiceError {
    SpiceError::NonFinite {
        device: section_label(ckt, note.section),
        node: unknown_name(ckt, note.row),
        stage: note.stage,
        time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn default_guard_is_off() {
        assert_eq!(current().kcl_tol, None);
        assert_eq!(kcl_tolerance(), None);
    }

    #[test]
    fn with_installs_and_restores() {
        with(GuardConfig::kcl(1e-9), || {
            assert_eq!(kcl_tolerance(), Some(1e-9));
            with(GuardConfig::default(), || {
                assert_eq!(kcl_tolerance(), None);
            });
            assert_eq!(kcl_tolerance(), Some(1e-9));
        });
        assert_eq!(kcl_tolerance(), None);
    }

    #[test]
    fn unknown_names_cover_the_layout() {
        let mut ckt = Circuit::new();
        let a = ckt.node("vin");
        let b = ckt.node("vout");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, b, 1e3);
        ckt.inductor(b, Circuit::GROUND, 1e-6);
        let n = ckt.num_unknowns();
        assert_eq!(n, 4);
        assert_eq!(unknown_name(&ckt, 0), "node 'vin'");
        assert_eq!(unknown_name(&ckt, 1), "node 'vout'");
        assert!(unknown_name(&ckt, 2).contains("voltage source vin-0"));
        assert!(unknown_name(&ckt, 3).contains("inductor vout-0"));
        assert_eq!(unknown_name(&ckt, 99), "unknown #99");
    }

    #[test]
    fn section_labels_are_descriptive() {
        let ckt = Circuit::new();
        assert_eq!(section_label(&ckt, StampSection::Linear), "linear elements");
        assert!(section_label(&ckt, StampSection::Solver).contains("solver"));
        assert_eq!(section_label(&ckt, StampSection::Fault), "fault injection");
        assert_eq!(section_label(&ckt, StampSection::Device(7)), "device #7");
    }
}
