//! A SPICE-style netlist parser.
//!
//! Parses the classic card format into a [`Circuit`] plus analysis
//! directives, so decks can be run without writing Rust:
//!
//! ```text
//! * RC low-pass
//! V1 in 0 PULSE(0 1.2 1n 50p 50p 2n 4n)
//! R1 in out 1k
//! C1 out 0 10f
//! .tran 8n
//! .end
//! ```
//!
//! Supported cards: `R`, `C`, `L`, `V`, `I` (DC / `PULSE(...)` /
//! `PWL(...)` / `SIN(...)` / `EXP(...)`), `E` (VCVS), `G` (VCCS), and device cards
//! (`M`/`X`) resolved through a caller-supplied [`DeviceFactory`] — the
//! `nemscmos` core crate registers the calibrated 90 nm MOSFET and NEMS
//! models. `.MODEL` cards define deck-local aliases of factory models
//! with default parameters (`.MODEL fast nmos90 W=2u`); instance
//! parameters override the card's. Directives: `.op`, `.tran`, `.dc`,
//! `.ac`, `.ic`, `.model`, `.end`.
//! Engineering suffixes (`f p n u m k meg g t`) and `+` continuation
//! lines follow SPICE conventions; `*` and `;` start comments.

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::device::Device;
use crate::element::{NodeId, SourceRef};
use crate::waveform::Waveform;
use crate::{Result, SpiceError};

/// Creates nonlinear devices for `M`/`X` cards.
///
/// `params` holds the parsed `KEY=value` assignments (keys upper-cased,
/// values suffix-expanded).
pub trait DeviceFactory {
    /// Builds a device for `model` with the given instance `name` and
    /// terminal `nodes`, or returns `None` if the model is unknown.
    fn make(
        &self,
        name: &str,
        model: &str,
        nodes: &[NodeId],
        params: &HashMap<String, f64>,
    ) -> Option<Box<dyn Device>>;
}

/// A factory that knows no device models (linear-only decks).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDevices;

impl DeviceFactory for NoDevices {
    fn make(
        &self,
        _: &str,
        _: &str,
        _: &[NodeId],
        _: &HashMap<String, f64>,
    ) -> Option<Box<dyn Device>> {
        None
    }
}

/// An analysis directive parsed from the deck.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `.op`
    Op,
    /// `.tran [tstep] tstop` (tstep accepted and ignored; the engine is
    /// adaptive).
    Tran {
        /// Stop time (s).
        tstop: f64,
    },
    /// `.dc SRCNAME start stop step`
    Dc {
        /// Name of the swept voltage source.
        source: String,
        /// Sweep start (V).
        start: f64,
        /// Sweep stop (V).
        stop: f64,
        /// Sweep increment (V).
        step: f64,
    },
    /// `.ac dec NPOINTS fstart fstop` driven by the first source in the deck.
    Ac {
        /// Points per decade.
        points_per_decade: usize,
        /// Start frequency (Hz).
        f_start: f64,
        /// Stop frequency (Hz).
        f_stop: f64,
    },
}

/// The result of parsing a deck: the circuit, its directives, and name
/// lookup tables for probing.
pub struct ParsedDeck {
    /// The elaborated circuit.
    pub circuit: Circuit,
    /// Directives in deck order.
    pub directives: Vec<Directive>,
    /// Voltage sources by (upper-cased) instance name.
    pub sources: HashMap<String, SourceRef>,
    /// Node name → id map for every node mentioned in the deck.
    pub nodes: HashMap<String, NodeId>,
}

impl std::fmt::Debug for ParsedDeck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParsedDeck")
            .field("directives", &self.directives)
            .field("num_nodes", &self.nodes.len())
            .field("num_sources", &self.sources.len())
            .finish()
    }
}

/// Parses a numeric token with SPICE engineering suffixes
/// (`10k`, `2.5u`, `1meg`, `50p`, trailing unit letters ignored:
/// `10pF` → `1e-11`).
///
/// # Errors
///
/// Returns [`SpiceError::InvalidCircuit`] if no leading number exists.
pub fn parse_value(token: &str) -> Result<f64> {
    let t = token.trim().to_ascii_lowercase();
    let num_end = t
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(t.len());
    // Careful: 'e' may be an exponent or the end of the mantissa; try the
    // longest numeric prefix that parses.
    let mut best: Option<(f64, &str)> = None;
    for end in (1..=num_end).rev() {
        if let Ok(v) = t[..end].parse::<f64>() {
            best = Some((v, &t[end..]));
            break;
        }
    }
    let (base, rest) = best
        .ok_or_else(|| SpiceError::InvalidCircuit(format!("cannot parse number from '{token}'")))?;
    let mult = if rest.starts_with("meg") {
        1e6
    } else {
        match rest.chars().next() {
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') | Some('µ') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            _ => 1.0,
        }
    };
    Ok(base * mult)
}

fn parse_waveform(tokens: &[String]) -> Result<Waveform> {
    if tokens.is_empty() {
        return Ok(Waveform::dc(0.0));
    }
    let head = tokens[0].to_ascii_uppercase();
    let args_of = |prefix: &str| -> Result<Vec<f64>> {
        // Re-join and strip "PREFIX(" ... ")".
        let joined = tokens.join(" ");
        let upper = joined.to_ascii_uppercase();
        let open = upper
            .find('(')
            .ok_or_else(|| SpiceError::InvalidCircuit(format!("{prefix} source needs '(args)'")))?;
        let close = upper
            .rfind(')')
            .ok_or_else(|| SpiceError::InvalidCircuit(format!("{prefix} source missing ')'")))?;
        joined[open + 1..close]
            .split([' ', ','])
            .filter(|s| !s.is_empty())
            .map(parse_value)
            .collect()
    };
    if head.starts_with("PULSE") {
        let a = args_of("PULSE")?;
        if a.len() != 7 {
            return Err(SpiceError::InvalidCircuit(format!(
                "PULSE needs 7 arguments (v1 v2 delay rise fall width period), got {}",
                a.len()
            )));
        }
        return Ok(Waveform::pulse(a[0], a[1], a[2], a[3], a[4], a[5], a[6]));
    }
    if head.starts_with("PWL") {
        let a = args_of("PWL")?;
        if a.len() < 2 || a.len() % 2 != 0 {
            return Err(SpiceError::InvalidCircuit(
                "PWL needs an even number of t/v arguments".into(),
            ));
        }
        let pts = a.chunks(2).map(|c| (c[0], c[1])).collect();
        return Waveform::pwl(pts);
    }
    if head.starts_with("SIN") {
        let a = args_of("SIN")?;
        if a.len() < 3 {
            return Err(SpiceError::InvalidCircuit(
                "SIN needs at least (offset ampl freq)".into(),
            ));
        }
        return Ok(Waveform::Sin {
            offset: a[0],
            ampl: a[1],
            freq: a[2],
            delay: a.get(3).copied().unwrap_or(0.0),
        });
    }
    if head.starts_with("EXP") {
        let a = args_of("EXP")?;
        if a.len() != 6 {
            return Err(SpiceError::InvalidCircuit(
                "EXP needs 6 arguments (v1 v2 td1 tau1 td2 tau2)".into(),
            ));
        }
        if !(a[3] > 0.0 && a[5] > 0.0 && a[4] >= a[2]) {
            return Err(SpiceError::InvalidCircuit(
                "EXP needs positive time constants and td2 >= td1".into(),
            ));
        }
        return Ok(Waveform::exp(a[0], a[1], a[2], a[3], a[4], a[5]));
    }
    if head == "DC" {
        let v = tokens
            .get(1)
            .ok_or_else(|| SpiceError::InvalidCircuit("DC source needs a value".into()))?;
        return Ok(Waveform::dc(parse_value(v)?));
    }
    // Bare value.
    Ok(Waveform::dc(parse_value(&tokens[0])?))
}

/// Joins continuation lines and strips comments.
fn logical_lines(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = match raw.find(';') {
            Some(k) => &raw[..k],
            None => raw,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.push(' ');
                last.push_str(cont);
                continue;
            }
        }
        out.push(trimmed.to_string());
    }
    out
}

/// A parsed `.subckt` definition.
#[derive(Debug, Clone)]
struct Subckt {
    pins: Vec<String>,
    body: Vec<String>,
}

/// Splits the deck into subcircuit definitions and top-level lines.
fn extract_subckts(lines: Vec<String>) -> Result<(HashMap<String, Subckt>, Vec<String>)> {
    let mut defs: HashMap<String, Subckt> = HashMap::new();
    let mut top = Vec::new();
    let mut current: Option<(String, Subckt)> = None;
    for line in lines {
        let first = line
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        if first == ".SUBCKT" {
            if current.is_some() {
                return Err(SpiceError::InvalidCircuit(
                    "nested .subckt definitions are not supported".into(),
                ));
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() < 3 {
                return Err(SpiceError::InvalidCircuit(
                    ".subckt needs a name and at least one pin".into(),
                ));
            }
            current = Some((
                tokens[1].to_ascii_lowercase(),
                Subckt {
                    pins: tokens[2..].iter().map(|p| p.to_ascii_lowercase()).collect(),
                    body: Vec::new(),
                },
            ));
        } else if first == ".ENDS" {
            let (name, def) = current.take().ok_or_else(|| {
                SpiceError::InvalidCircuit(".ends without a matching .subckt".into())
            })?;
            defs.insert(name, def);
        } else if let Some((_, def)) = current.as_mut() {
            def.body.push(line);
        } else {
            top.push(line);
        }
    }
    if let Some((name, _)) = current {
        return Err(SpiceError::InvalidCircuit(format!(
            ".subckt {name} missing .ends"
        )));
    }
    Ok((defs, top))
}

/// Returns the token index range holding node names for an element card.
fn node_token_range(card_kind: char, tokens: &[String]) -> std::ops::Range<usize> {
    match card_kind {
        'R' | 'C' | 'L' | 'V' | 'I' => 1..3.min(tokens.len()),
        'E' | 'G' => 1..5.min(tokens.len()),
        'M' | 'X' => {
            let split = tokens
                .iter()
                .position(|t| t.contains('='))
                .unwrap_or(tokens.len());
            1..split.saturating_sub(1).max(1)
        }
        _ => 1..1,
    }
}

/// Expands every `X` card that references a `.subckt` until only
/// primitive cards remain.
fn expand_subckts(defs: &HashMap<String, Subckt>, top: Vec<String>) -> Result<Vec<String>> {
    let mut lines = top;
    for _depth in 0..32 {
        let mut expanded = Vec::new();
        let mut changed = false;
        for line in lines {
            let tokens: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
            let card = tokens[0].to_ascii_uppercase();
            let is_x = card.starts_with('X');
            // The "model" of an X card is the last bare token.
            let split = tokens
                .iter()
                .position(|t| t.contains('='))
                .unwrap_or(tokens.len());
            let model = tokens
                .get(split.wrapping_sub(1))
                .map(|m| m.to_ascii_lowercase());
            let def = if is_x {
                model.as_ref().and_then(|m| defs.get(m))
            } else {
                None
            };
            let Some(def) = def else {
                expanded.push(line);
                continue;
            };
            changed = true;
            let actual_nodes = &tokens[1..split - 1];
            if actual_nodes.len() != def.pins.len() {
                return Err(SpiceError::InvalidCircuit(format!(
                    "'{line}': subcircuit expects {} pins, got {}",
                    def.pins.len(),
                    actual_nodes.len()
                )));
            }
            let inst = tokens[0].to_ascii_lowercase();
            let map_node = |n: &str| -> String {
                let low = n.to_ascii_lowercase();
                if low == "0" || low == "gnd" {
                    return "0".to_string();
                }
                if let Some(k) = def.pins.iter().position(|p| *p == low) {
                    return actual_nodes[k].to_ascii_lowercase();
                }
                format!("{inst}.{low}")
            };
            for body_line in &def.body {
                let mut btok: Vec<String> = body_line
                    .split_whitespace()
                    .map(|s| s.to_string())
                    .collect();
                let Some(first) = btok.first() else {
                    continue; // blank body line
                };
                if first.starts_with('.') {
                    return Err(SpiceError::InvalidCircuit(format!(
                        "directive '{first}' inside .subckt body"
                    )));
                }
                let Some(kind) = first.chars().next().map(|c| c.to_ascii_uppercase()) else {
                    continue;
                };
                let range = node_token_range(kind, &btok);
                for k in range {
                    btok[k] = map_node(&btok[k]);
                }
                // Uniquify the instance name too.
                btok[0] = format!("{}.{inst}", btok[0]);
                expanded.push(btok.join(" "));
            }
        }
        lines = expanded;
        if !changed {
            return Ok(lines);
        }
    }
    Err(SpiceError::InvalidCircuit(
        "subcircuit expansion exceeded depth 32 (recursive definition?)".into(),
    ))
}

/// A deck-local model alias declared by a `.MODEL` card.
#[derive(Debug, Clone)]
struct ModelCard {
    /// The factory model (or another alias) this card refines.
    base: String,
    /// Default `KEY=value` parameters; instance parameters win.
    params: HashMap<String, f64>,
}

/// Collects every `.MODEL name base [KEY=val ...]` card up front, so an
/// instance may reference a model defined later in the deck.
fn collect_models(lines: &[String]) -> Result<HashMap<String, ModelCard>> {
    let mut models: HashMap<String, ModelCard> = HashMap::new();
    for line in lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if !tokens
            .first()
            .is_some_and(|t| t.eq_ignore_ascii_case(".model"))
        {
            continue;
        }
        let bad = |msg: &str| SpiceError::InvalidCircuit(format!("'{line}': {msg}"));
        if tokens.len() < 3 || tokens[1].contains('=') || tokens[2].contains('=') {
            return Err(bad(".model needs: .MODEL name base [KEY=value ...]"));
        }
        let name = tokens[1].to_ascii_lowercase();
        let base = tokens[2].to_ascii_lowercase();
        let mut params = HashMap::new();
        for kv in &tokens[3..] {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| bad("model parameters look like KEY=value"))?;
            params.insert(k.to_ascii_uppercase(), parse_value(v)?);
        }
        if models
            .insert(name.clone(), ModelCard { base, params })
            .is_some()
        {
            return Err(bad(&format!("duplicate .MODEL '{name}'")));
        }
    }
    Ok(models)
}

/// Resolves a device card's model through the `.MODEL` alias table:
/// follows alias chains (depth-capped) and layers parameters so that the
/// instance's own assignments override every card along the chain.
fn resolve_model(
    model: &str,
    instance_params: &HashMap<String, f64>,
    models: &HashMap<String, ModelCard>,
) -> Result<(String, HashMap<String, f64>)> {
    let mut name = model.to_string();
    let mut chain = Vec::new();
    while let Some(card) = models.get(&name) {
        if chain.len() >= 8 {
            return Err(SpiceError::InvalidCircuit(format!(
                ".MODEL alias chain from '{model}' exceeds depth 8 (recursive definition?)"
            )));
        }
        chain.push(card);
        name = card.base.clone();
    }
    // Outermost alias wins over the ones it refines; the instance wins
    // over all of them.
    let mut params = HashMap::new();
    for card in chain.iter().rev() {
        params.extend(card.params.iter().map(|(k, v)| (k.clone(), *v)));
    }
    params.extend(instance_params.iter().map(|(k, v)| (k.clone(), *v)));
    Ok((name, params))
}

/// Parses a SPICE deck into a circuit and directives.
///
/// Supports hierarchical `.subckt`/`.ends` definitions: `X` cards whose
/// model matches a subcircuit are flattened (internal nodes prefixed with
/// the instance name); other `X`/`M` cards go to the device factory,
/// after `.MODEL` aliases are resolved.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidCircuit`] describing the offending card
/// (element syntax, unknown model, malformed directive, ...).
pub fn parse_deck<F: DeviceFactory>(text: &str, factory: &F) -> Result<ParsedDeck> {
    let mut ckt = Circuit::new();
    let mut directives = Vec::new();
    let mut sources: HashMap<String, SourceRef> = HashMap::new();
    let mut nodes: HashMap<String, NodeId> = HashMap::new();

    let (defs, top) = extract_subckts(logical_lines(text))?;
    let flat = expand_subckts(&defs, top)?;
    let models = collect_models(&flat)?;

    for line in flat {
        let tokens: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let Some(first_token) = tokens.first() else {
            continue; // blank line survived expansion
        };
        let card = first_token.to_ascii_uppercase();
        let bad = |msg: &str| SpiceError::InvalidCircuit(format!("'{line}': {msg}"));

        if card == ".END" {
            break;
        }
        if let Some(directive) = card.strip_prefix('.') {
            match directive {
                "OP" => directives.push(Directive::Op),
                "TRAN" => {
                    // .tran [tstep] tstop — last numeric token is tstop.
                    let tstop = tokens
                        .last()
                        .filter(|_| tokens.len() >= 2)
                        .ok_or_else(|| bad(".tran needs a stop time"))
                        .and_then(|t| parse_value(t))?;
                    directives.push(Directive::Tran { tstop });
                }
                "DC" => {
                    if tokens.len() != 5 {
                        return Err(bad(".dc needs SRC start stop step"));
                    }
                    directives.push(Directive::Dc {
                        source: tokens[1].to_ascii_uppercase(),
                        start: parse_value(&tokens[2])?,
                        stop: parse_value(&tokens[3])?,
                        step: parse_value(&tokens[4])?,
                    });
                }
                "AC" => {
                    if tokens.len() != 5 || !tokens[1].eq_ignore_ascii_case("dec") {
                        return Err(bad(".ac needs: dec npoints fstart fstop"));
                    }
                    directives.push(Directive::Ac {
                        points_per_decade: parse_value(&tokens[2])? as usize,
                        f_start: parse_value(&tokens[3])?,
                        f_stop: parse_value(&tokens[4])?,
                    });
                }
                "IC" => {
                    // .ic v(node)=value [v(node)=value ...]
                    for assign in &tokens[1..] {
                        let a = assign.to_ascii_lowercase();
                        let inner = a
                            .strip_prefix("v(")
                            .and_then(|s| s.split_once(")="))
                            .ok_or_else(|| bad(".ic entries look like v(node)=value"))?;
                        let node = ckt.node(inner.0);
                        nodes.insert(inner.0.to_string(), node);
                        ckt.set_ic(node, parse_value(inner.1)?);
                    }
                }
                // Consumed (and validated) by the `collect_models` pre-pass.
                "MODEL" => {}
                other => return Err(bad(&format!("unknown directive .{other}"))),
            }
            continue;
        }

        // Element card. Terminal count by type.
        let Some(kind) = card.chars().next() else {
            continue;
        };
        let mut node_of = |name: &str| -> NodeId {
            let id = ckt.node(&name.to_ascii_lowercase());
            nodes.insert(name.to_ascii_lowercase(), id);
            id
        };
        match kind {
            'R' | 'C' | 'L' => {
                if tokens.len() < 4 {
                    return Err(bad("needs: name n1 n2 value"));
                }
                let a = node_of(&tokens[1]);
                let b = node_of(&tokens[2]);
                let v = parse_value(&tokens[3])?;
                match kind {
                    'R' => {
                        if !(v.is_finite() && v > 0.0) {
                            return Err(bad("resistance must be positive"));
                        }
                        ckt.resistor(a, b, v);
                    }
                    'C' => {
                        if !(v.is_finite() && v >= 0.0) {
                            return Err(bad("capacitance must be non-negative"));
                        }
                        ckt.capacitor(a, b, v);
                    }
                    _ => {
                        if !(v.is_finite() && v > 0.0) {
                            return Err(bad("inductance must be positive"));
                        }
                        ckt.inductor(a, b, v);
                    }
                }
            }
            'V' => {
                if tokens.len() < 4 {
                    return Err(bad("needs: name n+ n- waveform"));
                }
                let p = node_of(&tokens[1]);
                let m = node_of(&tokens[2]);
                let wave = parse_waveform(&tokens[3..])?;
                let src = ckt.vsource(p, m, wave);
                sources.insert(card.clone(), src);
            }
            'I' => {
                if tokens.len() < 4 {
                    return Err(bad("needs: name n+ n- waveform"));
                }
                let p = node_of(&tokens[1]);
                let m = node_of(&tokens[2]);
                let wave = parse_waveform(&tokens[3..])?;
                ckt.isource(p, m, wave);
            }
            'E' | 'G' => {
                if tokens.len() < 6 {
                    return Err(bad("needs: name out+ out- ctl+ ctl- gain"));
                }
                let op = node_of(&tokens[1]);
                let om = node_of(&tokens[2]);
                let cp = node_of(&tokens[3]);
                let cm = node_of(&tokens[4]);
                let gain = parse_value(&tokens[5])?;
                if kind == 'E' {
                    ckt.vcvs(op, om, cp, cm, gain);
                } else {
                    ckt.vccs(op, om, cp, cm, gain);
                }
            }
            'M' | 'X' => {
                // name n1 n2 ... model KEY=val ... — the model is the last
                // bare token before the first KEY=val.
                let split = tokens
                    .iter()
                    .position(|t| t.contains('='))
                    .unwrap_or(tokens.len());
                if split < 3 {
                    return Err(bad("device needs nodes and a model name"));
                }
                let model = tokens[split - 1].to_ascii_lowercase();
                let node_names = &tokens[1..split - 1];
                let ids: Vec<NodeId> = node_names.iter().map(|n| node_of(n)).collect();
                let mut params = HashMap::new();
                for kv in &tokens[split..] {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| bad("device parameters look like KEY=value"))?;
                    params.insert(k.to_ascii_uppercase(), parse_value(v)?);
                }
                let (resolved, params) = resolve_model(&model, &params, &models)?;
                let dev = factory
                    .make(&card, &resolved, &ids, &params)
                    .ok_or_else(|| {
                        if resolved == model {
                            bad(&format!("unknown device model '{model}'"))
                        } else {
                            bad(&format!(
                                "unknown device model '{resolved}' (via .MODEL '{model}')"
                            ))
                        }
                    })?;
                ckt.add_boxed_device(dev);
            }
            other => return Err(bad(&format!("unknown element type '{other}'"))),
        }
    }
    Ok(ParsedDeck {
        circuit: ckt,
        directives,
        sources,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op::op;
    use crate::analysis::tran::{transient, TranOptions};

    #[test]
    fn value_suffixes() {
        let close = |t: &str, v: f64| {
            let got = parse_value(t).unwrap();
            assert!(
                (got - v).abs() <= 1e-12 * v.abs().max(1e-20),
                "{t}: {got} vs {v}"
            );
        };
        close("10k", 10e3);
        close("2.5u", 2.5e-6);
        close("1meg", 1e6);
        close("50p", 50e-12);
        close("3f", 3e-15);
        close("1.2", 1.2);
        close("-5m", -5e-3);
        close("1e-9", 1e-9);
        close("10pF", 10e-12);
        assert!(parse_value("xyz").is_err());
    }

    #[test]
    fn parses_divider_and_runs_op() {
        let deck = "\
* divider
V1 in 0 DC 2.0
R1 in out 1k
R2 out 0 3k
.op
.end
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        assert_eq!(parsed.directives, vec![Directive::Op]);
        let mut ckt = parsed.circuit;
        let res = op(&mut ckt).unwrap();
        let out = parsed.nodes["out"];
        assert!((res.voltage(out) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn parses_pulse_source_and_tran() {
        let deck = "\
V1 in 0 PULSE(0 1.2 1n 50p 50p 2n 4n)
R1 in out 1k
C1 out 0 10f
.tran 1p 6n
.end
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        match parsed.directives[0] {
            Directive::Tran { tstop } => assert!((tstop - 6e-9).abs() < 1e-20),
            ref other => panic!("expected .tran, got {other:?}"),
        }
        let mut ckt = parsed.circuit;
        let res = transient(&mut ckt, 6e-9, &TranOptions::default()).unwrap();
        let out = parsed.nodes["out"];
        assert!(res.voltage(out).eval(2.5e-9) > 1.15);
    }

    #[test]
    fn continuation_and_comments() {
        let deck = "\
* a comment
V1 in 0
+ DC 1.0        ; inline comment
R1 in 0 1k
.op
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        assert!(parsed.sources.contains_key("V1"));
    }

    #[test]
    fn pwl_sin_and_exp_sources() {
        let deck = "\
V1 a 0 PWL(0 0 1n 1.0 2n 0.5)
V2 b 0 SIN(0.6 0.5 1meg)
V3 c 0 EXP(0 1.2 1n 0.2n 3n 0.5n)
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
.op
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        assert_eq!(parsed.sources.len(), 3);
        assert!(parse_deck("V1 a 0 EXP(0 1 0 1)\nR1 a 0 1k\n.op\n", &NoDevices).is_err());
    }

    #[test]
    fn dc_sweep_directive() {
        let deck = "\
V1 in 0 DC 0
R1 in 0 1k
.dc V1 0 1.2 0.1
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        assert_eq!(
            parsed.directives,
            vec![Directive::Dc {
                source: "V1".into(),
                start: 0.0,
                stop: 1.2,
                step: 0.1
            }]
        );
    }

    #[test]
    fn ic_directive_sets_initial_condition() {
        let deck = "\
R1 x 0 1k
C1 x 0 1n
.ic v(x)=2.0
.tran 10u
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        assert_eq!(parsed.circuit.ics().len(), 1);
    }

    #[test]
    fn error_messages_name_the_line() {
        let err = parse_deck("Q1 a b c model", &NoDevices).unwrap_err();
        assert!(err.to_string().contains("Q1"));
        let err = parse_deck("R1 a 0 -5", &NoDevices).unwrap_err();
        assert!(err.to_string().contains("positive"));
        let err = parse_deck(".bogus 1", &NoDevices).unwrap_err();
        assert!(err.to_string().contains("bogus"));
        let err = parse_deck("M1 d g s mystery W=1u", &NoDevices).unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn subckt_divider_expands_and_runs() {
        let deck = "\
.subckt div top out
R1 top out 1k
R2 out 0 1k
.ends
V1 in 0 DC 2.0
Xd in mid div
R3 mid 0 1meg
.op
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        let mut ckt = parsed.circuit;
        let res = op(&mut ckt).unwrap();
        // Internal subckt node got prefixed and became v(mid) via the pin.
        let mid = parsed.nodes["mid"];
        // Divider loaded by 1 MΩ: very close to 1.0 V.
        assert!(
            (res.voltage(mid) - 1.0).abs() < 5e-3,
            "v(mid) = {}",
            res.voltage(mid)
        );
    }

    #[test]
    fn nested_instantiation_two_levels() {
        let deck = "\
.subckt unit a b
R1 a b 1k
.ends
.subckt pair x y
X1 x m unit
X2 m y unit
.ends
V1 in 0 DC 1.0
Xp in out pair
R9 out 0 2k
.op
";
        let parsed = parse_deck(deck, &NoDevices).unwrap();
        let mut ckt = parsed.circuit;
        let res = op(&mut ckt).unwrap();
        // 2 kΩ series (two units) into 2 kΩ: v(out) = 0.5.
        let out = parsed.nodes["out"];
        assert!(
            (res.voltage(out) - 0.5).abs() < 1e-6,
            "v(out) = {}",
            res.voltage(out)
        );
    }

    #[test]
    fn recursive_subckt_is_rejected() {
        let deck = "\
.subckt loopy a b
X1 a b loopy
.ends
V1 in 0 DC 1
Xl in 0 loopy
.op
";
        let err = parse_deck(deck, &NoDevices).unwrap_err();
        assert!(err.to_string().contains("depth"));
    }

    #[test]
    fn malformed_subckts_are_rejected() {
        assert!(parse_deck(".subckt only_name\n.ends\n", &NoDevices).is_err());
        assert!(parse_deck(".ends\n", &NoDevices).is_err());
        assert!(parse_deck(".subckt a p\nR1 p 0 1k\n", &NoDevices).is_err());
        let nested = ".subckt a p\n.subckt b q\n.ends\n.ends\n";
        assert!(parse_deck(nested, &NoDevices).is_err());
    }

    #[test]
    fn pin_count_mismatch_is_rejected() {
        let deck = "\
.subckt div top out
R1 top out 1k
.ends
V1 in 0 DC 1
Xd in div
.op
";
        let err = parse_deck(deck, &NoDevices).unwrap_err();
        assert!(err.to_string().contains("pins"));
    }

    #[test]
    fn unknown_model_is_rejected_with_name() {
        let deck = "M1 d g s nmos90 W=2u\n.op\n";
        assert!(parse_deck(deck, &NoDevices).is_err());
    }
}
