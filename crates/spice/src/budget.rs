//! Solve budgets: deadlines, iteration caps, and cooperative cancellation.
//!
//! A [`Budget`] bounds how long a solve may run. It is installed for the
//! current thread with [`with`] (same thread-local install/restore pattern
//! as [`profile`](crate::profile) and [`faults`](crate::faults)) and
//! polled from inside the Newton loop on **every iteration**, so even a
//! solve wedged in a timestep-rejection storm is interrupted at iteration
//! granularity. A tripped budget surfaces as a typed
//! [`SpiceError::DeadlineExceeded`] / [`SpiceError::Cancelled`] carrying
//! the partial solver effort spent inside the scope.
//!
//! Three mechanisms compose:
//!
//! * **Wall-clock deadline** and **iteration caps** (Newton / LU /
//!   step-rejection), checked synchronously by the polling solve itself.
//! * **Cooperative cancellation** through a shared [`InterruptFlag`]: any
//!   other thread (a user, a watchdog) raises the flag and the solve
//!   bails at its next Newton iteration. The flag is sticky, so once
//!   raised every subsequent solve in the scope — including op fallback
//!   ladders — fails fast too.
//! * **Heartbeats**: if the budget carries a shared
//!   [`Heartbeat`](crate::stats::Heartbeat), every poll publishes the
//!   effort spent so far, and accepted transient steps / completed DC
//!   solves tick its *progress* counter. A supervising watchdog uses this
//!   to cancel jobs that stop making progress.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use nemscmos_spice::budget::{self, Budget};
//! use nemscmos_spice::circuit::Circuit;
//! use nemscmos_spice::analysis::op::op;
//! use nemscmos_spice::waveform::Waveform;
//!
//! let mut ckt = Circuit::new();
//! let n = ckt.node("out");
//! ckt.vsource(n, Circuit::GROUND, Waveform::dc(1.0));
//! ckt.resistor(n, Circuit::GROUND, 1e3);
//! // A generous deadline: the solve completes normally.
//! let res = budget::with(Budget::deadline(Duration::from_secs(60)), || op(&mut ckt));
//! assert!(res.is_ok());
//! ```

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use nemscmos_numeric::newton::{InterruptFlag, InterruptKind};

use crate::stats::{self, Heartbeat, SolverStats};
use crate::SpiceError;

/// Limits applied to every solve while the budget is installed.
///
/// All limits are optional; a default budget is unbounded (useful when
/// only the heartbeat or the cancellation flag is wanted). Iteration caps
/// are measured as deltas from the moment the budget is installed, so
/// nested scopes each get a fresh allowance.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock deadline, measured from installation.
    pub deadline: Option<Duration>,
    /// Cap on Newton iterations spent inside the scope.
    pub max_newton: Option<u64>,
    /// Cap on LU factorizations spent inside the scope.
    pub max_lu: Option<u64>,
    /// Cap on transient step rejections inside the scope.
    pub max_rejections: Option<u64>,
    /// Cooperative cancellation flag, shared with the supervisor.
    pub flag: Option<InterruptFlag>,
    /// Shared heartbeat published on every Newton iteration.
    pub heartbeat: Option<Arc<Heartbeat>>,
}

impl Budget {
    /// An unbounded budget (no limits, no flag, no heartbeat).
    pub fn unbounded() -> Budget {
        Budget::default()
    }

    /// A budget with only a wall-clock deadline.
    pub fn deadline(d: Duration) -> Budget {
        Budget {
            deadline: Some(d),
            ..Budget::default()
        }
    }

    /// A cancellable budget; raising the returned flag (from any thread)
    /// interrupts the solve at its next Newton iteration.
    pub fn cancellable() -> (Budget, InterruptFlag) {
        let flag = InterruptFlag::new();
        let budget = Budget {
            flag: Some(flag.clone()),
            ..Budget::default()
        };
        (budget, flag)
    }

    /// Sets the Newton iteration cap.
    pub fn with_max_newton(mut self, cap: u64) -> Budget {
        self.max_newton = Some(cap);
        self
    }

    /// Sets the LU factorization cap.
    pub fn with_max_lu(mut self, cap: u64) -> Budget {
        self.max_lu = Some(cap);
        self
    }

    /// Sets the step-rejection cap.
    pub fn with_max_rejections(mut self, cap: u64) -> Budget {
        self.max_rejections = Some(cap);
        self
    }

    /// Attaches a cooperative cancellation flag.
    pub fn with_flag(mut self, flag: InterruptFlag) -> Budget {
        self.flag = Some(flag);
        self
    }

    /// Attaches a shared heartbeat.
    pub fn with_heartbeat(mut self, hb: Arc<Heartbeat>) -> Budget {
        self.heartbeat = Some(hb);
        self
    }
}

/// A shared allowance of solver effort, drawn down across many solves.
///
/// A [`Budget`] caps one scope; a `QuotaPool` caps a *stream* of scopes —
/// e.g. every job one client submits to the job server. The pool holds a
/// grant of Newton iterations. Before each job, [`QuotaPool::budget`]
/// derives a `Budget` whose `max_newton` is the remaining allowance;
/// after the job, [`QuotaPool::settle`] subtracts the effort actually
/// spent (from the job's [`SolverStats`], success or failure alike). An
/// exhausted pool derives no further budgets, which admission control
/// surfaces as a typed quota rejection rather than letting a zero-cap
/// solve trip mid-flight.
///
/// Clones share the same allowance (the counter is behind an `Arc`), so
/// the admission thread and per-connection workers can draw on one pool.
#[derive(Debug, Clone)]
pub struct QuotaPool {
    granted: u64,
    remaining: Arc<std::sync::atomic::AtomicU64>,
}

impl QuotaPool {
    /// A pool granting `newton` Newton iterations in total.
    pub fn new(newton: u64) -> QuotaPool {
        QuotaPool {
            granted: newton,
            remaining: Arc::new(std::sync::atomic::AtomicU64::new(newton)),
        }
    }

    /// The original grant.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Newton iterations still available.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(std::sync::atomic::Ordering::Acquire)
    }

    /// True once the allowance is fully spent.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Derives a budget capped at the remaining allowance, or `None` if
    /// the pool is exhausted (callers reject the job instead of running
    /// it against a zero cap).
    pub fn budget(&self) -> Option<Budget> {
        let left = self.remaining();
        (left > 0).then(|| Budget::unbounded().with_max_newton(left))
    }

    /// Charges the pool for effort actually spent, saturating at zero.
    /// Returns the allowance left after the charge.
    pub fn settle(&self, spent: &SolverStats) -> u64 {
        use std::sync::atomic::Ordering;
        let cost = spent.newton_iterations;
        let mut cur = self.remaining.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(cost);
            match self.remaining.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }
}

struct Scope {
    budget: Budget,
    armed: Instant,
    base: SolverStats,
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// Runs `f` with `budget` installed for the current thread, restoring any
/// previously installed budget afterwards (even on panic). Nested scopes
/// shadow outer ones; caps and the deadline of the inner scope are
/// measured from its own installation.
pub fn with<R>(budget: Budget, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Scope>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE.with(|s| *s.borrow_mut() = self.0.take());
        }
    }
    let scope = Scope {
        armed: Instant::now(),
        base: stats::snapshot(),
        budget,
    };
    let prev = SCOPE.with(|s| s.borrow_mut().replace(scope));
    let _restore = Restore(prev);
    f()
}

/// Like [`with`], but a `None` budget runs `f` with no scope installed
/// (zero per-iteration overhead).
pub fn with_opt<R>(budget: Option<Budget>, f: impl FnOnce() -> R) -> R {
    match budget {
        Some(b) => with(b, f),
        None => f(),
    }
}

/// True if a budget scope is installed on this thread.
pub fn active() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// A clone of the installed scope's interrupt flag, if any — the engine
/// attaches this to its `NewtonSolver` so `apply_step` observes raises.
pub(crate) fn flag() -> Option<InterruptFlag> {
    SCOPE.with(|s| s.borrow().as_ref().and_then(|sc| sc.budget.flag.clone()))
}

/// Effort spent inside the installed scope, plus `pending` Newton
/// iterations the in-flight solve has applied but not yet flushed into
/// the thread-local counters (LU counts flush immediately per solve, so
/// they need no such correction).
fn spent(scope: &Scope, pending_newton: u64) -> SolverStats {
    let mut d = stats::snapshot().delta_since(&scope.base);
    d.newton_iterations += pending_newton;
    d
}

fn deadline_error(limit: String, time: f64, spent: SolverStats) -> SpiceError {
    SpiceError::DeadlineExceeded {
        limit,
        time,
        spent: Box::new(spent),
    }
}

/// Builds the typed interrupt error for a raised flag observed by a
/// `NewtonSolver` (the `NewtonStatus::Interrupted` path in the engine).
pub(crate) fn interrupted(kind: InterruptKind, time: f64, pending_newton: u64) -> SpiceError {
    let spent = SCOPE.with(|s| {
        s.borrow()
            .as_ref()
            .map(|sc| spent(sc, pending_newton))
            .unwrap_or_default()
    });
    match kind {
        InterruptKind::Cancelled => SpiceError::Cancelled {
            time,
            spent: Box::new(spent),
        },
        InterruptKind::Deadline => deadline_error(
            "cancelled by supervisor (deadline or stall watchdog)".into(),
            time,
            spent,
        ),
    }
}

/// Polls the installed budget. Called from inside the Newton loop on every
/// iteration with the current simulation `time` and the solve's
/// not-yet-flushed iteration count. Publishes the heartbeat, then checks
/// flag → iteration caps → wall-clock deadline. A tripped limit raises the
/// scope's flag (if any) so concurrent/nested solves fail fast too.
pub(crate) fn poll(time: f64, pending_newton: u64) -> crate::Result<()> {
    SCOPE.with(|s| {
        let borrow = s.borrow();
        let Some(scope) = borrow.as_ref() else {
            return Ok(());
        };
        let spent = spent(scope, pending_newton);
        if let Some(hb) = &scope.budget.heartbeat {
            hb.publish(&spent);
        }
        if let Some(kind) = scope.budget.flag.as_ref().and_then(InterruptFlag::raised) {
            return Err(interrupted_with(kind, time, spent));
        }
        let caps = [
            (scope.budget.max_newton, spent.newton_iterations, "newton"),
            (scope.budget.max_lu, spent.lu_factorizations, "lu"),
            (
                scope.budget.max_rejections,
                spent.step_rejections,
                "step-rejection",
            ),
        ];
        for (cap, used, what) in caps {
            if let Some(cap) = cap {
                if used > cap {
                    if let Some(flag) = &scope.budget.flag {
                        flag.expire();
                    }
                    return Err(deadline_error(
                        format!("{what} iteration cap of {cap}"),
                        time,
                        spent,
                    ));
                }
            }
        }
        if let Some(d) = scope.budget.deadline {
            if scope.armed.elapsed() >= d {
                if let Some(flag) = &scope.budget.flag {
                    flag.expire();
                }
                return Err(deadline_error(
                    format!("wall-clock deadline of {d:?}"),
                    time,
                    spent,
                ));
            }
        }
        Ok(())
    })
}

fn interrupted_with(kind: InterruptKind, time: f64, spent: SolverStats) -> SpiceError {
    match kind {
        InterruptKind::Cancelled => SpiceError::Cancelled {
            time,
            spent: Box::new(spent),
        },
        InterruptKind::Deadline => deadline_error(
            "cancelled by supervisor (deadline or stall watchdog)".into(),
            time,
            spent,
        ),
    }
}

/// Heartbeat hook: a transient step was accepted at simulation time `t`.
pub(crate) fn pulse_accepted_step(t: f64) {
    SCOPE.with(|s| {
        if let Some(hb) = s
            .borrow()
            .as_ref()
            .and_then(|sc| sc.budget.heartbeat.as_ref())
        {
            hb.set_sim_time(t);
            hb.tick_progress();
        }
    });
}

/// Heartbeat hook: a DC solve completed successfully.
pub(crate) fn pulse_solve_done() {
    SCOPE.with(|s| {
        if let Some(hb) = s
            .borrow()
            .as_ref()
            .and_then(|sc| sc.budget.heartbeat.as_ref())
        {
            hb.tick_progress();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_means_no_limit() {
        assert!(!active());
        assert!(poll(0.0, 0).is_ok());
    }

    #[test]
    fn scope_installs_and_restores() {
        let (budget, _flag) = Budget::cancellable();
        with(budget, || {
            assert!(active());
            assert!(flag().is_some());
            with(Budget::unbounded(), || {
                // Inner scope shadows: no flag here.
                assert!(flag().is_none());
            });
            assert!(flag().is_some());
        });
        assert!(!active());
    }

    #[test]
    fn raised_flag_polls_as_cancelled() {
        let (budget, flag) = Budget::cancellable();
        with(budget, || {
            assert!(poll(0.0, 0).is_ok());
            flag.cancel();
            match poll(1e-9, 0) {
                Err(SpiceError::Cancelled { time, .. }) => assert_eq!(time, 1e-9),
                other => panic!("expected Cancelled, got {other:?}"),
            }
        });
    }

    #[test]
    fn newton_cap_trips_and_raises_the_flag() {
        let (budget, flag) = Budget::cancellable();
        with(budget.with_max_newton(10), || {
            assert!(poll(0.0, 10).is_ok());
            match poll(0.0, 11) {
                Err(SpiceError::DeadlineExceeded { limit, spent, .. }) => {
                    assert!(limit.contains("newton iteration cap of 10"));
                    assert_eq!(spent.newton_iterations, 11);
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
            assert_eq!(flag.raised(), Some(InterruptKind::Deadline));
        });
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        with(Budget::deadline(Duration::ZERO), || match poll(0.0, 0) {
            Err(SpiceError::DeadlineExceeded { limit, .. }) => {
                assert!(limit.contains("wall-clock deadline"));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        });
    }

    #[test]
    fn quota_pool_draws_down_and_exhausts() {
        let pool = QuotaPool::new(100);
        assert_eq!(pool.granted(), 100);
        assert_eq!(pool.remaining(), 100);
        assert!(!pool.exhausted());

        let b = pool.budget().expect("fresh pool derives a budget");
        assert_eq!(b.max_newton, Some(100));

        let mut spent = SolverStats {
            newton_iterations: 60,
            ..Default::default()
        };
        assert_eq!(pool.settle(&spent), 40);
        assert_eq!(pool.budget().unwrap().max_newton, Some(40));

        // Overdraw saturates at zero instead of wrapping.
        spent.newton_iterations = 1_000;
        assert_eq!(pool.settle(&spent), 0);
        assert!(pool.exhausted());
        assert!(pool.budget().is_none());
    }

    #[test]
    fn quota_pool_clones_share_the_allowance() {
        let pool = QuotaPool::new(10);
        let worker = pool.clone();
        let spent = SolverStats {
            newton_iterations: 7,
            ..Default::default()
        };
        worker.settle(&spent);
        assert_eq!(pool.remaining(), 3);
    }

    #[test]
    fn heartbeat_is_published_on_poll() {
        let hb = Arc::new(Heartbeat::new());
        with(Budget::unbounded().with_heartbeat(Arc::clone(&hb)), || {
            stats::count_newton_iterations(7);
            assert!(poll(0.0, 2).is_ok());
            pulse_accepted_step(3e-9);
            pulse_solve_done();
        });
        assert_eq!(hb.snapshot().newton_iterations, 9);
        assert_eq!(hb.progress(), 2);
        assert_eq!(hb.sim_time(), 3e-9);
    }
}
